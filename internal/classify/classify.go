// Package classify implements the paper's darknet traffic taxonomy
// (Sec. IV): every flowtuple is assigned to exactly one class — TCP
// scanning (SYN probes), ICMP scanning (echo requests), backscatter (the
// reply packets DoS victims spray at the telescope when attacked with
// spoofed sources: TCP SYN-ACK/RST and the ICMP reply types), UDP (left as
// its own category because stateless UDP cannot be split without payload
// inspection, Sec. IV-A), or Other (misconfiguration and unclassifiable
// traffic).
package classify

import (
	"fmt"

	"iotscope/internal/flowtuple"
)

// Class is a traffic category. The zero value is invalid so forgotten
// classifications surface immediately.
type Class uint8

const (
	// ScanTCP is TCP SYN probing (Sec. IV-C: 99.97 % of non-backscatter TCP).
	ScanTCP Class = iota + 1
	// ScanICMP is ICMP echo-request probing ("ping" scans).
	ScanICMP
	// Backscatter is DoS-victim reply traffic (Sec. IV-B).
	Backscatter
	// UDP is all UDP traffic (Sec. IV-A keeps it unsplit).
	UDP
	// Other covers misconfiguration and unclassifiable packets.
	Other
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ScanTCP:
		return "scan-tcp"
	case ScanICMP:
		return "scan-icmp"
	case Backscatter:
		return "backscatter"
	case UDP:
		return "udp"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("class-%d", uint8(c))
	}
}

// NumClasses is the number of traffic classes, for dense per-class arrays.
const NumClasses = 5

// Classes lists all classes in presentation order.
func Classes() []Class {
	return []Class{ScanTCP, ScanICMP, Backscatter, UDP, Other}
}

// Index returns a dense index in [0, NumClasses) for array-backed counters.
func (c Class) Index() int { return int(c) - 1 }

// backscatterICMPTypes are the ICMP reply types Sec. IV-B enumerates.
var backscatterICMPTypes = map[uint8]bool{
	flowtuple.ICMPEchoReply:      true,
	flowtuple.ICMPDestUnreach:    true,
	flowtuple.ICMPSourceQuench:   true,
	flowtuple.ICMPRedirect:       true,
	flowtuple.ICMPTimeExceeded:   true,
	flowtuple.ICMPParamProblem:   true,
	flowtuple.ICMPTimestampReply: true,
	flowtuple.ICMPInfoReply:      true,
	flowtuple.ICMPAddrMaskReply:  true,
}

// Record assigns the record's traffic class.
func Record(rec flowtuple.Record) Class {
	switch rec.Protocol {
	case flowtuple.ProtoTCP:
		return classifyTCP(rec)
	case flowtuple.ProtoICMP:
		return classifyICMP(rec)
	case flowtuple.ProtoUDP:
		return UDP
	default:
		return Other
	}
}

func classifyTCP(rec flowtuple.Record) Class {
	flags := rec.TCPFlags
	// Reply packets from a victim: SYN-ACK or any RST.
	if flags&flowtuple.FlagRST != 0 {
		return Backscatter
	}
	if flags&(flowtuple.FlagSYN|flowtuple.FlagACK) == flowtuple.FlagSYN|flowtuple.FlagACK {
		return Backscatter
	}
	// Probe packets: pure SYN (possibly with stealth-scan companions such
	// as ECN bits which the flowtuple does not retain).
	if flags&flowtuple.FlagSYN != 0 && flags&flowtuple.FlagACK == 0 {
		return ScanTCP
	}
	// ACK floods, FIN/NULL/Xmas probes and leftovers.
	return Other
}

func classifyICMP(rec flowtuple.Record) Class {
	typ := rec.ICMPType()
	if backscatterICMPTypes[typ] {
		return Backscatter
	}
	if typ == flowtuple.ICMPEchoRequest {
		return ScanICMP
	}
	return Other
}

// IsScan reports whether the class is a probing class.
func (c Class) IsScan() bool { return c == ScanTCP || c == ScanICMP }
