package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestLimiterValidation(t *testing.T) {
	if _, err := NewLimiter(0, time.Second); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRateLimiter(0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewRateLimiter(1, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestLimiterAcquireRelease(t *testing.T) {
	l, err := NewLimiter(2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Acquire() || !l.Acquire() {
		t.Fatal("slots not granted")
	}
	if l.Acquire() {
		t.Fatal("over-capacity acquire granted")
	}
	if l.InFlight() != 2 {
		t.Fatalf("inflight %d", l.InFlight())
	}
	l.Release()
	if !l.Acquire() {
		t.Fatal("released slot not reusable")
	}
	st := l.Stats()
	if st.Admitted != 3 || st.Shed != 1 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLimiterMiddlewareShedsWith503(t *testing.T) {
	l, err := NewLimiter(1, 7*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Only the workload path stalls; the exempt health path must
		// answer instantly even while the workload pins the only slot.
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), "/healthz")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/x", nil))
	}()
	<-started

	// Slot held: the next request sheds with 503 + Retry-After.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("shed body %q (%v)", rec.Body.String(), err)
	}

	// Exempt paths bypass the cap even while saturated.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code == http.StatusServiceUnavailable {
		t.Fatal("exempt path shed")
	}

	close(release)
	wg.Wait()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/x", nil))
	if rec.Code == http.StatusServiceUnavailable {
		t.Fatal("shed after slot freed")
	}
}

func TestRateLimiterBucketSemantics(t *testing.T) {
	rl, err := NewRateLimiter(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	rl.SetClock(func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.Allow("alice")
	if ok {
		t.Fatal("over-burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter %v", retry)
	}

	// Keys are independent.
	if ok, _ := rl.Allow("bob"); !ok {
		t.Fatal("independent key throttled")
	}

	// Refill at 1 token/s.
	now = now.Add(2 * time.Second)
	if ok, _ := rl.Allow("alice"); !ok {
		t.Fatal("no refill after 2s")
	}
	if ok, _ := rl.Allow("alice"); !ok {
		t.Fatal("second refilled token missing")
	}
	if ok, _ := rl.Allow("alice"); ok {
		t.Fatal("refill exceeded elapsed time")
	}
}

func TestRateLimiterPrunesIdleBuckets(t *testing.T) {
	rl, err := NewRateLimiter(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	rl.SetClock(func() time.Time { return now })
	for i := 0; i < maxBuckets; i++ {
		rl.Allow(string(rune('a')) + itoa(i))
	}
	// All idle buckets have fully refilled; the next new key prunes them.
	now = now.Add(time.Minute)
	rl.Allow("fresh")
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 1 {
		t.Fatalf("%d buckets survived prune", n)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestWithTimeoutPropagatesDeadline(t *testing.T) {
	var deadline time.Time
	var hasDeadline bool
	h := WithTimeout(50*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, hasDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !hasDeadline {
		t.Fatal("no deadline propagated")
	}
	if until := time.Until(deadline); until > 50*time.Millisecond {
		t.Fatalf("deadline too far out: %v", until)
	}
}

func TestShedResponseRoundsUp(t *testing.T) {
	rec := httptest.NewRecorder()
	ShedResponse(rec, http.StatusTooManyRequests, 1500*time.Millisecond, "slow down")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatal(rec.Code)
	}
	if rec.Header().Get("Retry-After") != "2" {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
	// Sub-second hints still advertise at least one second.
	rec = httptest.NewRecorder()
	ShedResponse(rec, http.StatusServiceUnavailable, 10*time.Millisecond, "x")
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
}

// Wait blocks until a token accrues, and honors cancellation while parked.
func TestRateLimiterWait(t *testing.T) {
	rl, err := NewRateLimiter(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Burst token is free; the second call must wait ~10ms for a refill.
	start := time.Now()
	if err := rl.Wait(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Wait(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("second Wait returned after %v without a refill wait", elapsed)
	}

	// An exhausted bucket with a nearly-dead refill rate: cancellation wins.
	slow, err := NewRateLimiter(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Wait(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := slow.Wait(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on drained bucket returned %v", err)
	}

	// An already-cancelled context returns immediately and must NOT
	// consume a token: the caller is gone, so granting would leak the
	// token past its user and starve the next live waiter.
	fresh, err := NewRateLimiter(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := fresh.Wait(done, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with dead context returned %v", err)
	}
	if ok, _ := fresh.Allow("k"); !ok {
		t.Fatal("dead-context Wait consumed the burst token")
	}
}

// TestRateLimiterWaitCancelPrompt proves a context cancelled mid-wait
// returns promptly — bounded by the cancellation, not by the (enormous)
// refill interval — and that the aborted wait consumed nothing.
func TestRateLimiterWaitCancelPrompt(t *testing.T) {
	rl, err := NewRateLimiter(0.0001, 1) // next refill ~3 hours away
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := rl.Allow("k"); !ok {
		t.Fatal("burst token missing")
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- rl.Wait(ctx, "k") }()
	time.Sleep(10 * time.Millisecond) // park the waiter on its timer
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return promptly after cancel")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancel-to-return took %v", waited)
	}
	// The aborted wait must not have burned the bucket's accounting:
	// with time frozen at "now", exactly zero tokens should have been
	// granted beyond the one Allow above.
	if ok, _ := rl.Allow("k"); ok {
		t.Fatal("cancelled Wait left a phantom token behind")
	}
}

// TestRateLimiterWaitConcurrentCancelNoLeak drains a frozen-clock bucket,
// parks many waiters, cancels them all, then advances the clock by
// exactly burst refills: if any cancelled waiter had consumed or leaked a
// token, the final tally could not come out to exactly burst grants.
func TestRateLimiterWaitConcurrentCancelNoLeak(t *testing.T) {
	const burst = 4
	rl, err := NewRateLimiter(1, burst)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	now := base
	var mu sync.Mutex
	rl.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	for i := 0; i < burst; i++ {
		if ok, _ := rl.Allow("k"); !ok {
			t.Fatalf("burst token %d missing", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 2*burst)
	for i := 0; i < 2*burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = rl.Wait(ctx, "k") // clock frozen: no refill, all park
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter %d returned %v", i, err)
		}
	}
	// Advance exactly burst seconds: the bucket refills to full and not a
	// token more. burst Allows succeed, the next fails — proof the eight
	// cancelled waiters neither consumed nor leaked anything.
	mu.Lock()
	now = base.Add(burst * time.Second)
	mu.Unlock()
	for i := 0; i < burst; i++ {
		if ok, _ := rl.Allow("k"); !ok {
			t.Fatalf("refilled token %d missing after concurrent cancel", i)
		}
	}
	if ok, _ := rl.Allow("k"); ok {
		t.Fatal("bucket over-refilled: a cancelled waiter leaked a token")
	}
}
