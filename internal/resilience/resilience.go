// Package resilience provides the admission-control building blocks for
// the long-running sharing API: a concurrency-limit semaphore that sheds
// load with 503 + Retry-After when the server is saturated, a per-key
// token-bucket rate limiter that rejects with 429 + Retry-After, and a
// middleware that propagates a per-request deadline through the request
// context. The paper's Discussion commits to operating the API as an
// always-on community service; these guards keep slow or abusive clients
// from taking it down.
package resilience

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Limiter is a concurrency-cap semaphore with load shedding. A request
// that cannot acquire a slot immediately is shed rather than queued:
// under overload, fast rejection with a Retry-After hint beats a convoy
// of blocked goroutines.
type Limiter struct {
	slots      chan struct{}
	retryAfter time.Duration

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// NewLimiter caps concurrent in-flight requests at max (which must be
// positive). Shed responses advertise retryAfter (rounded up to whole
// seconds, minimum 1) in the Retry-After header.
func NewLimiter(max int, retryAfter time.Duration) (*Limiter, error) {
	if max <= 0 {
		return nil, fmt.Errorf("resilience: limiter max %d must be positive", max)
	}
	return &Limiter{
		slots:      make(chan struct{}, max),
		retryAfter: retryAfter,
	}, nil
}

// Acquire attempts to take a slot without blocking.
func (l *Limiter) Acquire() bool {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return true
	default:
		l.shed.Add(1)
		return false
	}
}

// Release returns a slot taken by a successful Acquire.
func (l *Limiter) Release() { <-l.slots }

// InFlight reports the number of currently held slots.
func (l *Limiter) InFlight() int { return len(l.slots) }

// LimiterStats is a point-in-time snapshot of admission counters.
type LimiterStats struct {
	InFlight int    `json:"inFlight"`
	Capacity int    `json:"capacity"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

// Stats snapshots the counters.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		InFlight: len(l.slots),
		Capacity: cap(l.slots),
		Admitted: l.admitted.Load(),
		Shed:     l.shed.Load(),
	}
}

// Middleware wraps next with the concurrency cap. Requests whose path is
// in exempt (exact match) bypass the limiter — health probes must stay
// answerable precisely when the server is saturated.
func (l *Limiter) Middleware(next http.Handler, exempt ...string) http.Handler {
	skip := make(map[string]bool, len(exempt))
	for _, p := range exempt {
		skip[p] = true
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if skip[r.URL.Path] {
			next.ServeHTTP(w, r)
			return
		}
		if !l.Acquire() {
			ShedResponse(w, http.StatusServiceUnavailable, l.retryAfter,
				"server at concurrency capacity")
			return
		}
		defer l.Release()
		next.ServeHTTP(w, r)
	})
}

// RateLimiter applies an independent token bucket per key (typically one
// per API token), refilled at rate tokens/second up to burst.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time

	allowed atomic.Uint64
	denied  atomic.Uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-key state so an attacker cycling keys cannot
// grow the map without bound; idle buckets are pruned past the cap.
const maxBuckets = 4096

// NewRateLimiter builds a limiter granting rate requests/second with the
// given burst ceiling per key.
func NewRateLimiter(rate float64, burst int) (*RateLimiter, error) {
	if rate <= 0 || burst < 1 {
		return nil, fmt.Errorf("resilience: rate %v and burst %d must be positive", rate, burst)
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}, nil
}

// SetClock replaces the time source (tests).
func (rl *RateLimiter) SetClock(now func() time.Time) {
	rl.mu.Lock()
	rl.now = now
	rl.mu.Unlock()
}

// Allow reports whether one request for key may proceed now. When denied,
// retryAfter estimates how long until a token accrues.
func (rl *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxBuckets {
			rl.prune(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rl.rate
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		rl.allowed.Add(1)
		return true, 0
	}
	rl.denied.Add(1)
	return false, time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
}

// RateStats is a point-in-time snapshot of the per-key rate limiter.
type RateStats struct {
	Keys    int    `json:"keys"`
	Allowed uint64 `json:"allowed"`
	Denied  uint64 `json:"denied"`
}

// Stats snapshots the counters. Allowed/Denied count Allow decisions
// (including those made on behalf of Wait).
func (rl *RateLimiter) Stats() RateStats {
	rl.mu.Lock()
	keys := len(rl.buckets)
	rl.mu.Unlock()
	return RateStats{Keys: keys, Allowed: rl.allowed.Load(), Denied: rl.denied.Load()}
}

// Wait blocks until a token for key is available or the context is done.
// It is the batch-side counterpart of Allow: HTTP handlers shed load, but a
// queue drain would rather pace itself than drop work. A context that is
// already done never consumes a token — the ctx check precedes every
// Allow, so cancellation cannot race a grant into a token the caller will
// never use.
func (rl *RateLimiter) Wait(ctx context.Context, key string) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, retryAfter := rl.Allow(key)
		if ok {
			return nil
		}
		t := time.NewTimer(retryAfter)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// prune drops buckets idle long enough to have refilled completely — they
// carry no state a fresh bucket would not.
func (rl *RateLimiter) prune(now time.Time) {
	full := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range rl.buckets {
		if now.Sub(b.last) >= full {
			delete(rl.buckets, k)
		}
	}
}

// WithTimeout propagates a per-request deadline: next sees a request whose
// context is cancelled after d, so downstream work holding the context can
// abort instead of running past the client's patience.
func WithTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ShedResponse writes an admission-control rejection: the Retry-After
// header (whole seconds, minimum 1) plus a small JSON error body.
func ShedResponse(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", msg)
}
