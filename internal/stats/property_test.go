package stats

import (
	"math"
	"testing"
	"testing/quick"

	"iotscope/internal/rng"
)

// Property: swapping the samples negates Z and preserves P.
func TestMannWhitneyAntisymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n1, n2 := 2+r.Intn(40), 2+r.Intn(40)
		xs, ys := make([]float64, n1), make([]float64, n2)
		for i := range xs {
			xs[i] = float64(r.Intn(20))
		}
		for i := range ys {
			ys[i] = float64(r.Intn(20))
		}
		a, err1 := MannWhitneyU(xs, ys)
		b, err2 := MannWhitneyU(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Z+b.Z) < 1e-9 && math.Abs(a.P-b.P) < 1e-9 &&
			math.Abs(a.U-b.U2) < 1e-9 && math.Abs(a.U2-b.U) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q and bounded by the sample range.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		m := int(n)%50 + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		return Quantile(xs, 0) == min && Quantile(xs, 1) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms of either
// sample.
func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(50)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i]*0.5 + r.NormFloat64()
		}
		base, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		scaled := make([]float64, n)
		a := 1 + r.Float64()*10 // positive scale
		b := r.NormFloat64() * 100
		for i := range xs {
			scaled[i] = a*xs[i] + b
		}
		tr, err := Pearson(scaled, ys)
		if err != nil {
			return false
		}
		return math.Abs(base.R-tr.R) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the TopK invariant holds under any offer sequence — every kept
// item is >= every dropped item.
func TestTopKDominanceProperty(t *testing.T) {
	f := func(seed uint64, n uint8, kRaw uint8) bool {
		r := rng.New(seed)
		k := int(kRaw)%10 + 1
		tk := NewTopK(k)
		var all []float64
		for i := 0; i < int(n)%100+1; i++ {
			w := float64(r.Intn(50))
			all = append(all, w)
			tk.Offer(string(rune('a'+i%26))+string(rune('0'+i/26)), w)
		}
		kept := tk.Items()
		if len(kept) > k {
			return false
		}
		minKept := math.Inf(1)
		for _, it := range kept {
			minKept = math.Min(minKept, it.Weight)
		}
		// Count how many offers strictly exceed the smallest kept weight;
		// there can be at most k-1 of them among the kept themselves.
		above := 0
		for _, w := range all {
			if w > minKept {
				above++
			}
		}
		return above <= k-1 || len(kept) < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
