package stats

import (
	"sort"
	"testing"

	"iotscope/internal/rng"
)

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram(0, 3) // edges 1, 10, 100, 1000
	if len(h.Edges) != 4 || len(h.Counts) != 5 {
		t.Fatalf("edges %v counts %d", h.Edges, len(h.Counts))
	}
	h.Observe(0.5)  // bucket 0 (<= 1)
	h.Observe(1)    // bucket 0 (<= 1)
	h.Observe(5)    // bucket 1
	h.Observe(10)   // bucket 1
	h.Observe(999)  // bucket 3
	h.Observe(5000) // overflow bucket 4
	want := []int{2, 2, 0, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d want %d (all %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestLogHistogramSwappedExponents(t *testing.T) {
	h := NewLogHistogram(3, 0)
	if len(h.Edges) != 4 || h.Edges[0] != 1 {
		t.Fatalf("edges %v", h.Edges)
	}
}

func TestLogHistogramCumFraction(t *testing.T) {
	h := NewLogHistogram(0, 2)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	cf := h.CumFraction()
	want := []float64{0.25, 0.5, 0.75}
	for i, w := range want {
		if cf[i] != w {
			t.Errorf("CumFraction[%d] = %v want %v", i, cf[i], w)
		}
	}
	// Monotone.
	for i := 1; i < len(cf); i++ {
		if cf[i] < cf[i-1] {
			t.Fatal("CumFraction not monotone")
		}
	}
}

func TestLogHistogramEmptyCumFraction(t *testing.T) {
	h := NewLogHistogram(0, 2)
	for _, v := range h.CumFraction() {
		if v != 0 {
			t.Fatal("empty histogram fraction non-zero")
		}
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	tk.Offer("a", 1)
	tk.Offer("b", 5)
	tk.Offer("c", 3)
	tk.Offer("d", 4)
	tk.Offer("e", 2)
	items := tk.Items()
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	wantKeys := []string{"b", "d", "c"}
	for i, w := range wantKeys {
		if items[i].Key != w {
			t.Errorf("rank %d = %q want %q (items %v)", i, items[i].Key, w, items)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Offer("x", 1)
	tk.Offer("y", 2)
	items := tk.Items()
	if len(items) != 2 || items[0].Key != "y" {
		t.Fatalf("items %v", items)
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	tk := NewTopK(2)
	tk.Offer("zeta", 5)
	tk.Offer("alpha", 5)
	tk.Offer("mid", 5)
	items := tk.Items()
	if items[0].Key != "alpha" || items[1].Key != "mid" {
		t.Fatalf("tie break wrong: %v", items)
	}
}

func TestTopKMinimumOne(t *testing.T) {
	tk := NewTopK(0)
	tk.Offer("only", 1)
	if len(tk.Items()) != 1 {
		t.Fatal("k<1 not clamped to 1")
	}
}

// Property: TopK matches sort-then-truncate on random input.
func TestTopKMatchesSort(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(20)
		tk := NewTopK(k)
		items := make([]WeightedItem, n)
		for i := range items {
			items[i] = WeightedItem{
				Key:    string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
				Weight: float64(r.Intn(50)),
			}
			tk.Offer(items[i].Key, items[i].Weight)
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].Weight != items[j].Weight {
				return items[i].Weight > items[j].Weight
			}
			return items[i].Key < items[j].Key
		})
		want := items
		if len(want) > k {
			want = want[:k]
		}
		got := tk.Items()
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkTopKOffer(b *testing.B) {
	r := rng.New(1)
	tk := NewTopK(15)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "key" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Offer(keys[i&1023], float64(r.Intn(1000)))
	}
}
