// Package stats implements the statistical machinery the paper's evaluation
// relies on: descriptive summaries, empirical CDFs (Figs. 6 and 11), Pearson
// correlation with significance (Sec. IV-A/IV-C), and the Mann-Whitney U
// test used to compare CPS and consumer traffic volumes (Sec. IV and IV-B).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a test needs more observations.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds descriptive statistics for one sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
	Sum    float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. It returns NaN for an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds the ECDF of xs. It returns an error for an empty sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrInsufficientData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Points returns (x, P(X<=x)) pairs evaluated at the given xs, for plotting.
func (e *ECDF) Points(xs []float64) [][2]float64 {
	out := make([][2]float64, len(xs))
	for i, x := range xs {
		out[i] = [2]float64{x, e.At(x)}
	}
	return out
}

// PearsonResult is a correlation estimate with its significance.
type PearsonResult struct {
	R float64 // correlation coefficient in [-1, 1]
	P float64 // two-sided p-value (t approximation)
	N int
}

// Pearson computes the Pearson product-moment correlation of paired samples.
// The p-value uses the t distribution approximated by the normal for
// n > 30 and an exact-ish incomplete-beta-free fallback otherwise; at the
// paper's n = 143 hourly observations the approximation error is negligible.
func Pearson(xs, ys []float64) (PearsonResult, error) {
	if len(xs) != len(ys) {
		return PearsonResult{}, errors.New("stats: Pearson needs equal-length samples")
	}
	n := len(xs)
	if n < 3 {
		return PearsonResult{}, ErrInsufficientData
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return PearsonResult{R: 0, P: 1, N: n}, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding spill.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	res := PearsonResult{R: r, N: n}
	if math.Abs(r) == 1 {
		res.P = 0
		return res, nil
	}
	t := r * math.Sqrt(float64(n-2)/(1-r*r))
	res.P = 2 * (1 - studentTCDF(math.Abs(t), n-2))
	return res, nil
}

// studentTCDF approximates the CDF of Student's t with df degrees of freedom
// at x >= 0 using the normal approximation with a Cornish-Fisher style
// correction, accurate to ~1e-3 for df >= 5.
func studentTCDF(x float64, df int) float64 {
	v := float64(df)
	// Transform t to an approximately standard-normal deviate (Wallace 1959).
	z := math.Sqrt(v*math.Log(1+x*x/v)) * (1 - 3/(4*v+1) + 0) // leading terms
	if x < 0 {
		z = -z
	}
	return NormalCDF(z)
}

// NormalCDF returns the standard normal CDF via erf.
func NormalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// MannWhitneyResult reports a two-sided Mann-Whitney U test.
type MannWhitneyResult struct {
	U  float64 // U statistic for the first sample
	U2 float64 // U statistic for the second sample (U + U2 = n1*n2)
	Z  float64 // normal-approximation z score (tie-corrected)
	P  float64 // two-sided p-value
	N1 int
	N2 int
}

// MannWhitneyU performs the two-sided Mann-Whitney U (Wilcoxon rank-sum)
// test with the normal approximation and tie correction — the test the paper
// applies to per-hour packet counts (p < 0.0001, U = 6061, Z = -5.95 for
// backscatter CPS vs consumer).
func MannWhitneyU(xs, ys []float64) (MannWhitneyResult, error) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrInsufficientData
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie accounting.
	ranks := make([]float64, len(all))
	tieSum := 0.0 // sum of (t^3 - t) over tie groups
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		if t := float64(j - i); t > 1 {
			tieSum += t*t*t - t
		}
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1

	mu := fn1 * fn2 / 2
	nTot := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * (nTot + 1 - tieSum/(nTot*(nTot-1)))
	res := MannWhitneyResult{U: u1, U2: u2, N1: n1, N2: n2}
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		res.P = 1
		return res, nil
	}
	// Continuity correction toward the mean.
	diff := u1 - mu
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	res.Z = diff / math.Sqrt(sigma2)
	res.P = 2 * (1 - NormalCDF(math.Abs(res.Z)))
	return res, nil
}
