package stats

import (
	"math"
	"testing"
	"testing/quick"

	"iotscope/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Sum != 40 {
		t.Fatalf("N=%d Sum=%v", s.N, s.Sum)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample std of this classic set is sqrt(32/7).
	if !almostEqual(s.Std, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Error("empty summary not zero")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.Median != 3 {
		t.Errorf("single summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.1, 1}, {1.5, 5},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v want %v", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v want %v", tc.x, got, tc.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	pts := e.Points([]float64{1, 3})
	if pts[0][1] != 0.25 || pts[1][1] != 1 {
		t.Errorf("Points = %v", pts)
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("empty ECDF accepted")
	}
}

// Property: ECDF is monotone nondecreasing and within [0, 1].
func TestECDFMonotoneProperty(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	e, _ := NewECDF(xs)
	prev := 0.0
	for x := -10.0; x < 120; x += 0.7 {
		v := e.At(x)
		if v < prev || v < 0 || v > 1 {
			t.Fatalf("ECDF not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	res, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.R, 1, 1e-12) || res.P > 1e-9 {
		t.Fatalf("perfect correlation: %+v", res)
	}
	neg := []float64{10, 8, 6, 4, 2}
	res, _ = Pearson(xs, neg)
	if !almostEqual(res.R, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation R = %v", res.R)
	}
}

func TestPearsonIndependent(t *testing.T) {
	r := rng.New(21)
	n := 500
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	res, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.R) > 0.1 {
		t.Errorf("independent samples R = %v", res.R)
	}
	if res.P < 0.01 {
		t.Errorf("independent samples P = %v (spuriously significant)", res.P)
	}
}

func TestPearsonStrongNoisy(t *testing.T) {
	r := rng.New(23)
	n := 143 // the paper's hourly sample size
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) + 10*r.NormFloat64()
	}
	res, _ := Pearson(xs, ys)
	if res.R < 0.9 {
		t.Errorf("R = %v", res.R)
	}
	if res.P > 1e-4 {
		t.Errorf("P = %v, want < 1e-4", res.P)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("n < 3 accepted")
	}
	res, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || res.R != 0 || res.P != 1 {
		t.Errorf("constant sample: %+v, %v", res, err)
	}
}

// Property: Pearson R is symmetric and bounded.
func TestPearsonSymmetryProperty(t *testing.T) {
	r := rng.New(29)
	f := func(seed uint32) bool {
		local := rng.New(uint64(seed))
		n := 3 + local.Intn(50)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = local.NormFloat64()
			ys[i] = local.NormFloat64()
		}
		a, err1 := Pearson(xs, ys)
		b, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(a.R, b.R, 1e-9) && a.R >= -1 && a.R <= 1
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMannWhitneyKnownValue(t *testing.T) {
	// Hand-computed example: x = {1,2,3}, y = {4,5,6}: U1 = 0, U2 = 9.
	res, err := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 || res.U2 != 9 {
		t.Fatalf("U=%v U2=%v", res.U, res.U2)
	}
}

func TestMannWhitneyShiftDetected(t *testing.T) {
	r := rng.New(31)
	n := 143
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64() + 1.0
	}
	res, err := MannWhitneyU(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Errorf("shifted distributions not detected: p = %v", res.P)
	}
	if res.Z >= 0 {
		t.Errorf("Z = %v, want negative (first sample smaller)", res.Z)
	}
}

func TestMannWhitneyNoDifference(t *testing.T) {
	r := rng.New(37)
	n := 200
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	res, _ := MannWhitneyU(xs, ys)
	if res.P < 0.01 {
		t.Errorf("identical distributions flagged: p = %v", res.P)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	res, err := MannWhitneyU([]float64{1, 1, 2, 2}, []float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.U+res.U2, 16, 1e-9) {
		t.Fatalf("U1+U2 = %v, want n1*n2 = 16", res.U+res.U2)
	}
}

func TestMannWhitneyAllIdentical(t *testing.T) {
	res, err := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical constant samples p = %v", res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err == nil {
		t.Fatal("empty sample accepted")
	}
}

// Property: U1 + U2 == n1*n2 and p in [0, 1].
func TestMannWhitneyInvariantProperty(t *testing.T) {
	f := func(seed uint32) bool {
		local := rng.New(uint64(seed))
		n1, n2 := 1+local.Intn(40), 1+local.Intn(40)
		xs, ys := make([]float64, n1), make([]float64, n2)
		for i := range xs {
			xs[i] = float64(local.Intn(10))
		}
		for i := range ys {
			ys[i] = float64(local.Intn(10))
		}
		res, err := MannWhitneyU(xs, ys)
		if err != nil {
			return false
		}
		return almostEqual(res.U+res.U2, float64(n1*n2), 1e-6) &&
			res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalCDF(t *testing.T) {
	tests := []struct{ z, want float64 }{
		{0, 0.5}, {1.96, 0.975}, {-1.96, 0.025}, {5.95, 1},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.z); !almostEqual(got, tc.want, 0.002) {
			t.Errorf("NormalCDF(%v) = %v want %v", tc.z, got, tc.want)
		}
	}
}
