package stats

import (
	"math"
	"sort"
)

// LogHistogram bins positive values into decade-spaced buckets, matching the
// paper's Fig. 6/11 presentation (CDF over 0.001K..10000K packets on a log
// axis).
type LogHistogram struct {
	// Edges are bucket upper bounds; counts[i] holds values in
	// (edges[i-1], edges[i]] with counts[0] covering (0, edges[0]].
	Edges  []float64
	Counts []int
	total  int
}

// NewLogHistogram builds decade buckets from 10^loExp to 10^hiExp inclusive.
func NewLogHistogram(loExp, hiExp int) *LogHistogram {
	if hiExp < loExp {
		loExp, hiExp = hiExp, loExp
	}
	n := hiExp - loExp + 1
	edges := make([]float64, n)
	for i := range edges {
		edges[i] = math.Pow(10, float64(loExp+i))
	}
	return &LogHistogram{Edges: edges, Counts: make([]int, n+1)}
}

// Observe records a value. Values above the top edge land in the overflow
// bucket (index len(Edges)); non-positive values count in bucket 0.
func (h *LogHistogram) Observe(v float64) {
	h.total++
	i := sort.SearchFloat64s(h.Edges, v)
	h.Counts[i]++
}

// Total returns the number of observations.
func (h *LogHistogram) Total() int { return h.total }

// CumFraction returns the fraction of observations at or below each edge:
// one value per edge, the paper's CDF-over-log-bins series.
func (h *LogHistogram) CumFraction() []float64 {
	out := make([]float64, len(h.Edges))
	cum := 0
	for i := range h.Edges {
		cum += h.Counts[i]
		if h.total > 0 {
			out[i] = float64(cum) / float64(h.total)
		}
	}
	return out
}

// TopK maintains the k largest items by weight using a min-heap — the
// structure behind every "Top N ports/ISPs/countries" table. Ties are broken
// by key order so results are deterministic.
type TopK struct {
	k     int
	items []WeightedItem
}

// WeightedItem is a keyed weight for TopK and tables.
type WeightedItem struct {
	Key    string
	Weight float64
}

// NewTopK returns a collector for the k heaviest items.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, items: make([]WeightedItem, 0, k)}
}

func (t *TopK) less(i, j int) bool {
	if t.items[i].Weight != t.items[j].Weight {
		return t.items[i].Weight < t.items[j].Weight
	}
	// Inverted key order so the lexically larger key is "smaller" and gets
	// evicted first, keeping the lexically smallest among equal weights.
	return t.items[i].Key > t.items[j].Key
}

// Offer considers an item for inclusion.
func (t *TopK) Offer(key string, weight float64) {
	if len(t.items) < t.k {
		t.items = append(t.items, WeightedItem{key, weight})
		t.up(len(t.items) - 1)
		return
	}
	root := WeightedItem{key, weight}
	if t.items[0].Weight > weight ||
		(t.items[0].Weight == weight && t.items[0].Key < key) {
		return
	}
	t.items[0] = root
	t.down(0)
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.less(l, smallest) {
			smallest = l
		}
		if r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.items[i], t.items[smallest] = t.items[smallest], t.items[i]
		i = smallest
	}
}

// Items returns the collected items sorted by descending weight (ties by
// ascending key). The collector remains usable afterwards.
func (t *TopK) Items() []WeightedItem {
	out := append([]WeightedItem(nil), t.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	return out
}
