package notify

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"iotscope/internal/correlate"
	"iotscope/internal/netx"
	"iotscope/internal/threatintel"
	"iotscope/internal/wgen"
)

func buildWorld(t *testing.T) (*wgen.Generator, *correlate.Result, *threatintel.Repository) {
	t.Helper()
	dir, err := os.MkdirTemp("", "notify-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := wgen.Default(0.004, 909)
	sc.Hours = 24
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	res, err := correlate.New(g.Inventory(), correlate.Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// Small noise pool for the intel generator.
	pool := noise(g, 50)
	repo, err := threatintel.Generate(threatintel.DefaultGenConfig(), g.Truth(), g.Inventory(), pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, repo
}

func noise(g *wgen.Generator, n int) (out []netx.Addr) {
	for i := 0; len(out) < n; i++ {
		a := netx.Addr(0x63000001 + i*977)
		if _, isIoT := g.Inventory().LookupIP(a); !isIoT {
			out = append(out, a)
		}
	}
	return out
}

func TestBuildBundles(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	if len(bundles) == 0 {
		t.Fatal("no bundles")
	}
	// Every inferred device appears in exactly one bundle.
	seen := make(map[int]int)
	var pkts uint64
	for _, b := range bundles {
		if b.ISP == "" || b.ASN == 0 || b.Country == "" {
			t.Fatalf("bundle missing operator metadata: %+v", b)
		}
		for _, d := range b.Devices {
			seen[d.Device]++
			if len(d.Behaviours) == 0 {
				t.Fatalf("device %d with no behaviours", d.Device)
			}
		}
		pkts += b.Packets
	}
	if len(seen) != len(res.Devices) {
		t.Fatalf("bundled %d devices, inferred %d", len(seen), len(res.Devices))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("device %d in %d bundles", id, n)
		}
	}
	if pkts != res.TotalIoTPackets() {
		t.Fatalf("bundle packets %d != total %d", pkts, res.TotalIoTPackets())
	}
	// Sorted by device count descending.
	for i := 1; i < len(bundles); i++ {
		if len(bundles[i].Devices) > len(bundles[i-1].Devices) {
			t.Fatal("bundles not sorted")
		}
	}
}

func TestBuildFilters(t *testing.T) {
	g, res, _ := buildWorld(t)
	cfg := Config{MinDevices: 3, MinPackets: 1}
	bundles := Build(res, g.Inventory(), g.Registry(), nil, cfg)
	for _, b := range bundles {
		if len(b.Devices) < 3 {
			t.Fatalf("bundle below MinDevices: %+v", b)
		}
	}
	// High packet floor drops low-volume devices.
	cfg = Config{MinDevices: 1, MinPackets: 1 << 40}
	if got := Build(res, g.Inventory(), g.Registry(), nil, cfg); len(got) != 0 {
		t.Fatalf("packet floor ignored: %d bundles", len(got))
	}
}

func TestThreatCorroboration(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	flagged := 0
	for _, b := range bundles {
		for _, d := range b.Devices {
			flagged += len(d.ThreatFlags)
		}
	}
	if flagged == 0 {
		t.Fatal("no threat corroboration despite a populated repository")
	}
	// Without a repository there are no flags.
	bundles = Build(res, g.Inventory(), g.Registry(), nil, DefaultConfig())
	for _, b := range bundles {
		for _, d := range b.Devices {
			if len(d.ThreatFlags) != 0 {
				t.Fatal("flags without repository")
			}
		}
	}
}

// A device with no corroborating intel must render cleanly: no
// "corroborated" line and no empty-services parenthetical.
func TestRenderZeroThreatFlags(t *testing.T) {
	b := Bundle{
		ISP: "Example-Net", ASN: 64500, Country: "DE",
		Devices: []DeviceEntry{{
			Device: 7, IP: "10.1.2.3", Category: "consumer", Type: "camera",
			FirstSeen: 4, Packets: 123, Behaviours: []string{"tcp-scanning"},
		}},
		Packets: 123,
	}
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "corroborated by threat intelligence") {
		t.Fatalf("flag-free device rendered a corroboration line:\n%s", out)
	}
	if strings.Contains(out, "()") {
		t.Fatalf("empty services rendered as ():\n%s", out)
	}
	if !strings.Contains(out, "1 compromised IoT device(s)") {
		t.Fatalf("device count missing:\n%s", out)
	}
}

// Operators with empty metadata (unknown ISP name, zero ASN, no country)
// still produce a well-formed report rather than a panic or garbage.
func TestRenderEmptyISPMetadata(t *testing.T) {
	b := Bundle{
		Devices: []DeviceEntry{{
			Device: 1, IP: "192.0.2.1", Category: "cps", Type: "plc",
			Packets: 9, Behaviours: []string{"udp-probing"},
		}},
		Packets: 9,
	}
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "To: abuse contact,  (AS0, )") {
		t.Fatalf("empty-metadata header malformed:\n%s", out)
	}
	if !strings.Contains(out, "192.0.2.1") {
		t.Fatalf("device line missing:\n%s", out)
	}
}

// MinDevices above every operator's device count yields zero bundles, and
// MinDevices below 1 is normalized up rather than panicking.
func TestBuildMinDevicesBoundaries(t *testing.T) {
	g, res, _ := buildWorld(t)
	if got := Build(res, g.Inventory(), g.Registry(), nil,
		Config{MinDevices: 1 << 30, MinPackets: 1}); len(got) != 0 {
		t.Fatalf("MinDevices 2^30 produced %d bundles", len(got))
	}
	zero := Build(res, g.Inventory(), g.Registry(), nil, Config{MinDevices: 0, MinPackets: 1})
	one := Build(res, g.Inventory(), g.Registry(), nil, Config{MinDevices: 1, MinPackets: 1})
	if len(zero) != len(one) {
		t.Fatalf("MinDevices 0 (%d bundles) not normalized to 1 (%d bundles)",
			len(zero), len(one))
	}
}

func TestRender(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	var buf bytes.Buffer
	if err := bundles[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"To: abuse contact", bundles[0].ISP, "compromised IoT device",
		"first seen hour", "remediate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}
