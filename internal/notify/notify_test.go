package notify

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"iotscope/internal/correlate"
	"iotscope/internal/netx"
	"iotscope/internal/threatintel"
	"iotscope/internal/wgen"
)

func buildWorld(t *testing.T) (*wgen.Generator, *correlate.Result, *threatintel.Repository) {
	t.Helper()
	dir, err := os.MkdirTemp("", "notify-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := wgen.Default(0.004, 909)
	sc.Hours = 24
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	res, err := correlate.New(g.Inventory(), correlate.Options{}).ProcessDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Small noise pool for the intel generator.
	pool := noise(g, 50)
	repo, err := threatintel.Generate(threatintel.DefaultGenConfig(), g.Truth(), g.Inventory(), pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, repo
}

func noise(g *wgen.Generator, n int) (out []netx.Addr) {
	for i := 0; len(out) < n; i++ {
		a := netx.Addr(0x63000001 + i*977)
		if _, isIoT := g.Inventory().LookupIP(a); !isIoT {
			out = append(out, a)
		}
	}
	return out
}

func TestBuildBundles(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	if len(bundles) == 0 {
		t.Fatal("no bundles")
	}
	// Every inferred device appears in exactly one bundle.
	seen := make(map[int]int)
	var pkts uint64
	for _, b := range bundles {
		if b.ISP == "" || b.ASN == 0 || b.Country == "" {
			t.Fatalf("bundle missing operator metadata: %+v", b)
		}
		for _, d := range b.Devices {
			seen[d.Device]++
			if len(d.Behaviours) == 0 {
				t.Fatalf("device %d with no behaviours", d.Device)
			}
		}
		pkts += b.Packets
	}
	if len(seen) != len(res.Devices) {
		t.Fatalf("bundled %d devices, inferred %d", len(seen), len(res.Devices))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("device %d in %d bundles", id, n)
		}
	}
	if pkts != res.TotalIoTPackets() {
		t.Fatalf("bundle packets %d != total %d", pkts, res.TotalIoTPackets())
	}
	// Sorted by device count descending.
	for i := 1; i < len(bundles); i++ {
		if len(bundles[i].Devices) > len(bundles[i-1].Devices) {
			t.Fatal("bundles not sorted")
		}
	}
}

func TestBuildFilters(t *testing.T) {
	g, res, _ := buildWorld(t)
	cfg := Config{MinDevices: 3, MinPackets: 1}
	bundles := Build(res, g.Inventory(), g.Registry(), nil, cfg)
	for _, b := range bundles {
		if len(b.Devices) < 3 {
			t.Fatalf("bundle below MinDevices: %+v", b)
		}
	}
	// High packet floor drops low-volume devices.
	cfg = Config{MinDevices: 1, MinPackets: 1 << 40}
	if got := Build(res, g.Inventory(), g.Registry(), nil, cfg); len(got) != 0 {
		t.Fatalf("packet floor ignored: %d bundles", len(got))
	}
}

func TestThreatCorroboration(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	flagged := 0
	for _, b := range bundles {
		for _, d := range b.Devices {
			flagged += len(d.ThreatFlags)
		}
	}
	if flagged == 0 {
		t.Fatal("no threat corroboration despite a populated repository")
	}
	// Without a repository there are no flags.
	bundles = Build(res, g.Inventory(), g.Registry(), nil, DefaultConfig())
	for _, b := range bundles {
		for _, d := range b.Devices {
			if len(d.ThreatFlags) != 0 {
				t.Fatal("flags without repository")
			}
		}
	}
}

func TestRender(t *testing.T) {
	g, res, repo := buildWorld(t)
	bundles := Build(res, g.Inventory(), g.Registry(), repo, DefaultConfig())
	var buf bytes.Buffer
	if err := bundles[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"To: abuse contact", bundles[0].ISP, "compromised IoT device",
		"first seen hour", "remediate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}
