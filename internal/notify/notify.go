// Package notify turns inference results into the operational notification
// artifacts the paper's first contribution promises ("Internet-wide,
// IoT-tailored notifications of such exploitations, thus permitting rapid
// remediation"): per-ISP abuse bundles listing each operator's compromised
// devices, their observed behaviours, and the intel that corroborates them.
package notify

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/threatintel"
)

// DeviceEntry is one compromised device inside a bundle.
type DeviceEntry struct {
	Device      int      `json:"device"`
	IP          string   `json:"ip"`
	Category    string   `json:"category"`
	Type        string   `json:"type"`
	Services    []string `json:"services,omitempty"`
	FirstSeen   int      `json:"firstSeenHour"`
	Packets     uint64   `json:"packets"`
	Behaviours  []string `json:"behaviours"`
	ThreatFlags []string `json:"threatFlags,omitempty"`
}

// Bundle is the abuse notification for one operator.
type Bundle struct {
	ISP     string        `json:"isp"`
	ASN     uint32        `json:"asn"`
	Country string        `json:"country"`
	Devices []DeviceEntry `json:"devices"`
	Packets uint64        `json:"packets"`
}

// Config tunes bundle construction.
type Config struct {
	// MinDevices drops operators with fewer compromised devices.
	MinDevices int
	// MinPackets drops devices below a noise floor.
	MinPackets uint64
}

// DefaultConfig notifies every operator about every device.
func DefaultConfig() Config { return Config{MinDevices: 1, MinPackets: 1} }

// Build assembles per-ISP bundles from a correlation result, ordered by
// descending device count. The threat repository is optional (nil skips
// corroboration flags).
func Build(res *correlate.Result, inv *devicedb.Inventory, reg *geo.Registry,
	repo *threatintel.Repository, cfg Config) []Bundle {

	if cfg.MinDevices < 1 {
		cfg.MinDevices = 1
	}
	byISP := make(map[int][]DeviceEntry)
	pktsByISP := make(map[int]uint64)

	ids := make([]int, 0, len(res.Devices))
	for id := range res.Devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ds := res.Devices[id]
		if ds.TotalPackets() < cfg.MinPackets {
			continue
		}
		d := inv.At(id)
		entry := DeviceEntry{
			Device:     id,
			IP:         d.IP.String(),
			Category:   d.Category.String(),
			Type:       d.Type.String(),
			Services:   d.Services,
			FirstSeen:  ds.FirstSeen,
			Packets:    ds.TotalPackets(),
			Behaviours: behaviours(ds),
		}
		if repo != nil {
			for _, c := range repo.CategoriesOf(d.IP) {
				entry.ThreatFlags = append(entry.ThreatFlags, c.String())
			}
		}
		byISP[d.ISP] = append(byISP[d.ISP], entry)
		pktsByISP[d.ISP] += entry.Packets
	}

	bundles := make([]Bundle, 0, len(byISP))
	for isp, devices := range byISP {
		if len(devices) < cfg.MinDevices {
			continue
		}
		info := reg.ISPs[isp]
		bundles = append(bundles, Bundle{
			ISP:     info.Name,
			ASN:     info.ASN,
			Country: info.Country,
			Devices: devices,
			Packets: pktsByISP[isp],
		})
	}
	sort.Slice(bundles, func(i, j int) bool {
		if len(bundles[i].Devices) != len(bundles[j].Devices) {
			return len(bundles[i].Devices) > len(bundles[j].Devices)
		}
		if bundles[i].Packets != bundles[j].Packets {
			return bundles[i].Packets > bundles[j].Packets
		}
		return bundles[i].ISP < bundles[j].ISP
	})
	return bundles
}

// behaviours summarizes what the device was observed doing.
func behaviours(ds *correlate.DeviceStats) []string {
	var out []string
	if ds.Packets[classify.ScanTCP.Index()] > 0 {
		out = append(out, "tcp-scanning")
	}
	if ds.Packets[classify.ScanICMP.Index()] > 0 {
		out = append(out, "icmp-scanning")
	}
	if ds.Packets[classify.UDP.Index()] > 0 {
		out = append(out, "udp-probing")
	}
	if ds.Packets[classify.Backscatter.Index()] > 0 {
		out = append(out, "dos-victim")
	}
	if ds.Packets[classify.Other.Index()] > 0 {
		out = append(out, "misconfiguration")
	}
	return out
}

// Render writes one bundle as an abuse-report text.
func (b Bundle) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "To: abuse contact, %s (AS%d, %s)\n", b.ISP, b.ASN, b.Country)
	fmt.Fprintf(&sb, "Subject: %d compromised IoT device(s) observed at a network telescope\n\n",
		len(b.Devices))
	fmt.Fprintf(&sb, "The following devices in your address space emitted %d unsolicited\n", b.Packets)
	fmt.Fprintf(&sb, "packets toward unused (dark) address space during the capture window:\n\n")
	for _, d := range b.Devices {
		fmt.Fprintf(&sb, "  %-16s %s/%s", d.IP, d.Category, d.Type)
		if len(d.Services) > 0 {
			fmt.Fprintf(&sb, " (%s)", strings.Join(d.Services, ", "))
		}
		fmt.Fprintf(&sb, "\n    first seen hour %d, %d packets, behaviours: %s\n",
			d.FirstSeen, d.Packets, strings.Join(d.Behaviours, ", "))
		if len(d.ThreatFlags) > 0 {
			fmt.Fprintf(&sb, "    corroborated by threat intelligence: %s\n",
				strings.Join(d.ThreatFlags, ", "))
		}
	}
	sb.WriteString("\nPlease investigate and remediate (credential reset / firmware update / isolation).\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
