// Package notify turns inference results into the operational notification
// artifacts the paper's first contribution promises ("Internet-wide,
// IoT-tailored notifications of such exploitations, thus permitting rapid
// remediation"): per-ISP abuse bundles listing each operator's compromised
// devices, their observed behaviours, and the intel that corroborates them.
//
// Bundle construction is strictly filter-then-aggregate: the noise floor
// (MinPackets) is applied to each device before anything is counted, so an
// operator's Packets total never includes traffic from devices the report
// does not name.
package notify

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/malwaredb"
	"iotscope/internal/netx"
	"iotscope/internal/threatintel"
)

// DeviceEntry is one compromised device inside a bundle.
type DeviceEntry struct {
	Device     int      `json:"device"`
	IP         string   `json:"ip"`
	Category   string   `json:"category"`
	Type       string   `json:"type"`
	Services   []string `json:"services,omitempty"`
	FirstSeen  int      `json:"firstSeenHour"`
	Packets    uint64   `json:"packets"`
	Records    uint64   `json:"records"`
	ActiveDays int      `json:"activeDays"`
	Behaviours []string `json:"behaviours"`
	// UDPPorts and TCPPorts are the destination ports the device probed or
	// scanned, ascending, capped at MaxPortsPerDevice.
	UDPPorts []uint16 `json:"udpPorts,omitempty"`
	TCPPorts []uint16 `json:"tcpPorts,omitempty"`
	// ThreatFlags are corroborating threat-intelligence categories.
	ThreatFlags []string `json:"threatFlags,omitempty"`
	// MalwareFamilies and MalwareHashes are sandbox-corpus hits against the
	// device's address: family names and the sample hashes behind them.
	MalwareFamilies []string `json:"malwareFamilies,omitempty"`
	MalwareHashes   []string `json:"malwareHashes,omitempty"`
}

// MaxPortsPerDevice caps the per-device port evidence a report carries; an
// interval-119-style sweep touches tens of thousands of ports and an abuse
// desk does not need them enumerated.
const MaxPortsPerDevice = 12

// Bundle is the abuse notification for one operator.
type Bundle struct {
	ISP     string        `json:"isp"`
	ASN     uint32        `json:"asn"`
	Country string        `json:"country"`
	Devices []DeviceEntry `json:"devices"`
	Packets uint64        `json:"packets"`
	Records uint64        `json:"records"`
	// ISPIndex is the operator's index in the geo registry, carried so the
	// notification pipeline can resolve the operator's abuse contact.
	ISPIndex int `json:"ispIndex"`
}

// Config tunes bundle construction.
type Config struct {
	// MinDevices drops operators with fewer compromised devices.
	MinDevices int
	// MinPackets drops devices below a noise floor.
	MinPackets uint64
}

// DefaultConfig notifies every operator about every device.
func DefaultConfig() Config { return Config{MinDevices: 1, MinPackets: 1} }

// Sources collects the analysis outputs evidence is assembled from. Result,
// Inventory, and Registry are required; the intel sources are optional and
// extend the per-device evidence when present.
type Sources struct {
	Result    *correlate.Result
	Inventory *devicedb.Inventory
	Registry  *geo.Registry
	Threat    *threatintel.Repository
	Malware   *malwaredb.DB
	Catalog   *malwaredb.Catalog
}

// Build assembles per-ISP bundles from a correlation result, ordered by
// descending device count. The threat repository is optional (nil skips
// corroboration flags). It is the compatibility form of BuildBundles.
func Build(res *correlate.Result, inv *devicedb.Inventory, reg *geo.Registry,
	repo *threatintel.Repository, cfg Config) []Bundle {
	return BuildBundles(Sources{Result: res, Inventory: inv, Registry: reg, Threat: repo}, cfg)
}

// BuildBundles assembles per-ISP bundles with full per-device evidence,
// ordered by descending device count. Filtering precedes aggregation:
// devices under the MinPackets floor are dropped first and contribute to no
// total, port index, or intel lookup.
func BuildBundles(src Sources, cfg Config) []Bundle {
	if cfg.MinDevices < 1 {
		cfg.MinDevices = 1
	}
	res := src.Result

	// Pass 1 — filter. Nothing below is aggregated before this pass is done.
	kept := make([]int, 0, len(res.Devices))
	for id, ds := range res.Devices {
		if ds.TotalPackets() >= cfg.MinPackets {
			kept = append(kept, id)
		}
	}
	sort.Ints(kept)

	// Pass 2 — evidence indexes over the surviving devices only.
	udpPorts, tcpPorts := invertPortIndexes(res, kept)

	// Pass 3 — aggregate.
	byISP := make(map[int][]DeviceEntry)
	pktsByISP := make(map[int]uint64)
	recsByISP := make(map[int]uint64)
	for _, id := range kept {
		ds := res.Devices[id]
		d := src.Inventory.At(id)
		entry := DeviceEntry{
			Device:     id,
			IP:         d.IP.String(),
			Category:   d.Category.String(),
			Type:       d.Type.String(),
			Services:   d.Services,
			FirstSeen:  ds.FirstSeen,
			Packets:    ds.TotalPackets(),
			Records:    ds.Records,
			ActiveDays: bits.OnesCount64(ds.DayMask),
			Behaviours: behaviours(ds),
			UDPPorts:   udpPorts[id],
			TCPPorts:   tcpPorts[id],
		}
		if src.Threat != nil {
			for _, c := range src.Threat.CategoriesOf(d.IP) {
				entry.ThreatFlags = append(entry.ThreatFlags, c.String())
			}
		}
		if src.Malware != nil {
			entry.MalwareFamilies, entry.MalwareHashes = malwareEvidence(src, d.IP)
		}
		byISP[d.ISP] = append(byISP[d.ISP], entry)
		pktsByISP[d.ISP] += entry.Packets
		recsByISP[d.ISP] += entry.Records
	}

	bundles := make([]Bundle, 0, len(byISP))
	for isp, devices := range byISP {
		if len(devices) < cfg.MinDevices {
			continue
		}
		info := src.Registry.ISPs[isp]
		bundles = append(bundles, Bundle{
			ISP:      info.Name,
			ASN:      info.ASN,
			Country:  info.Country,
			Devices:  devices,
			Packets:  pktsByISP[isp],
			Records:  recsByISP[isp],
			ISPIndex: isp,
		})
	}
	sort.Slice(bundles, func(i, j int) bool {
		if len(bundles[i].Devices) != len(bundles[j].Devices) {
			return len(bundles[i].Devices) > len(bundles[j].Devices)
		}
		if bundles[i].Packets != bundles[j].Packets {
			return bundles[i].Packets > bundles[j].Packets
		}
		return bundles[i].ISP < bundles[j].ISP
	})
	return bundles
}

// invertPortIndexes turns the result's per-port device lists into per-device
// port lists (ascending, capped at MaxPortsPerDevice) for the devices in
// keep. The correlation aggregates by port because the paper's tables do;
// a complaint needs the transpose.
func invertPortIndexes(res *correlate.Result, keep []int) (udp, tcp map[int][]uint16) {
	keepSet := make(map[int]bool, len(keep))
	for _, id := range keep {
		keepSet[id] = true
	}
	udp = make(map[int][]uint16)
	tcp = make(map[int][]uint16)
	add := func(m map[int][]uint16, id int, port uint16) {
		if keepSet[id] {
			m[id] = append(m[id], port)
		}
	}
	for port, agg := range res.UDPPorts {
		for _, id := range agg.Devices {
			add(udp, int(id), port)
		}
	}
	for port, agg := range res.TCPScanPorts {
		for _, id := range agg.DevicesConsumer {
			add(tcp, int(id), port)
		}
		for _, id := range agg.DevicesCPS {
			add(tcp, int(id), port)
		}
	}
	for _, m := range []map[int][]uint16{udp, tcp} {
		for id, ports := range m {
			sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
			if len(ports) > MaxPortsPerDevice {
				ports = ports[:MaxPortsPerDevice]
			}
			m[id] = ports
		}
	}
	return udp, tcp
}

// malwareEvidence collects the distinct families and sample hashes of
// sandbox reports whose network activity touched ip. Samples the catalog
// cannot attribute surface as "unclassified" — a hit without a name is
// still evidence.
func malwareEvidence(src Sources, ip netx.Addr) (families, hashes []string) {
	seen := make(map[string]bool)
	for _, ri := range src.Malware.ReportsForIP(ip) {
		rep := src.Malware.Report(ri)
		hashes = append(hashes, rep.SHA256)
		fam := "unclassified"
		if src.Catalog != nil {
			if f, ok := src.Catalog.Family(rep.SHA256); ok {
				fam = f
			}
		}
		if !seen[fam] {
			seen[fam] = true
			families = append(families, fam)
		}
	}
	sort.Strings(families)
	sort.Strings(hashes)
	return families, hashes
}

// behaviours summarizes what the device was observed doing.
func behaviours(ds *correlate.DeviceStats) []string {
	var out []string
	if ds.Packets[classify.ScanTCP.Index()] > 0 {
		out = append(out, "tcp-scanning")
	}
	if ds.Packets[classify.ScanICMP.Index()] > 0 {
		out = append(out, "icmp-scanning")
	}
	if ds.Packets[classify.UDP.Index()] > 0 {
		out = append(out, "udp-probing")
	}
	if ds.Packets[classify.Backscatter.Index()] > 0 {
		out = append(out, "dos-victim")
	}
	if ds.Packets[classify.Other.Index()] > 0 {
		out = append(out, "misconfiguration")
	}
	return out
}

// Render writes one bundle as an abuse-report text.
func (b Bundle) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "To: abuse contact, %s (AS%d, %s)\n", b.ISP, b.ASN, b.Country)
	fmt.Fprintf(&sb, "Subject: %d compromised IoT device(s) observed at a network telescope\n\n",
		len(b.Devices))
	fmt.Fprintf(&sb, "The following devices in your address space emitted %d unsolicited\n", b.Packets)
	fmt.Fprintf(&sb, "packets toward unused (dark) address space during the capture window:\n\n")
	for _, d := range b.Devices {
		fmt.Fprintf(&sb, "  %-16s %s/%s", d.IP, d.Category, d.Type)
		if len(d.Services) > 0 {
			fmt.Fprintf(&sb, " (%s)", strings.Join(d.Services, ", "))
		}
		fmt.Fprintf(&sb, "\n    first seen hour %d, %d packets, behaviours: %s\n",
			d.FirstSeen, d.Packets, strings.Join(d.Behaviours, ", "))
		if len(d.ThreatFlags) > 0 {
			fmt.Fprintf(&sb, "    corroborated by threat intelligence: %s\n",
				strings.Join(d.ThreatFlags, ", "))
		}
	}
	sb.WriteString("\nPlease investigate and remediate (credential reset / firmware update / isolation).\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
