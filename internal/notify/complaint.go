package notify

import (
	"fmt"
	"strings"
	"text/template"
)

// ComplaintMeta carries the delivery-side context a rendered complaint
// embeds: where it is going, how the contact was found, and the suppression
// window the recipient is told about.
type ComplaintMeta struct {
	// Contact is the resolved abuse mailbox.
	Contact string
	// Tier names the resolution tier the contact came from
	// ("registry", "asn", "country").
	Tier string
	// WindowHours is the suppression window now in force for this operator:
	// the complaint tells the recipient when the next report can arrive.
	WindowHours int
	// Repeat marks a follow-up report (the operator was notified before).
	Repeat bool
}

// Complaint is one rendered abuse complaint ready to enqueue.
type Complaint struct {
	Subject string
	Body    string
}

// complaintTmpl is the abuse-complaint body. The window language follows
// the escalating-ban wording production abuse desks use: the first report
// opens a 24-hour window, and every further report doubles it.
var complaintTmpl = template.Must(template.New("complaint").Funcs(template.FuncMap{
	"join":  strings.Join,
	"ports": joinPorts,
}).Parse(`Dear abuse team of {{.B.ISP}} (AS{{.B.ASN}}, {{.B.Country}}),

{{if .M.Repeat}}this is a follow-up report: devices in your address space previously
reported to you continue to emit malicious traffic.{{else}}our network telescope observed malicious traffic originating from
IoT devices inside your address space.{{end}} During the capture window the
{{len .B.Devices}} device(s) listed below sent {{.B.Packets}} unsolicited packets
({{.B.Records}} flows) toward unused (dark) address space.

{{range .B.Devices}}* {{.IP}} — {{.Category}}/{{.Type}}{{if .Services}} ({{join .Services ", "}}){{end}}
  first seen hour {{.FirstSeen}}, active {{.ActiveDays}} day(s), {{.Packets}} packets in {{.Records}} flows
  behaviours: {{join .Behaviours ", "}}
{{- if .UDPPorts}}
  udp ports probed: {{ports .UDPPorts}}{{end}}
{{- if .TCPPorts}}
  tcp ports scanned: {{ports .TCPPorts}}{{end}}
{{- if .ThreatFlags}}
  corroborated by threat intelligence: {{join .ThreatFlags ", "}}{{end}}
{{- if .MalwareFamilies}}
  malware families contacting this host: {{join .MalwareFamilies ", "}}{{end}}
{{- if .MalwareHashes}}
  sandbox samples: {{join .MalwareHashes ", "}}{{end}}
{{end}}
Please investigate and remediate (credential reset / firmware update /
isolation). {{if .M.Repeat}}Because this is a repeat report, the reporting
window has doubled: you{{else}}You{{end}} will not receive another report about these
devices for {{.M.WindowHours}} hours unless their behaviour changes.

This report was addressed via the {{.M.Tier}} contact record for your
network. If {{.M.Contact}} is not the right mailbox, please update your
published abuse contact.
`))

// joinPorts renders a port list compactly.
func joinPorts(ports []uint16) string {
	parts := make([]string, len(ports))
	for i, p := range ports {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ", ")
}

// RenderComplaint renders the bundle as a deliverable complaint.
func RenderComplaint(b Bundle, meta ComplaintMeta) (Complaint, error) {
	var sb strings.Builder
	err := complaintTmpl.Execute(&sb, struct {
		B Bundle
		M ComplaintMeta
	}{b, meta})
	if err != nil {
		return Complaint{}, fmt.Errorf("notify: render complaint: %w", err)
	}
	subject := fmt.Sprintf("[abuse] %d compromised IoT device(s) in AS%d (%s)",
		len(b.Devices), b.ASN, b.ISP)
	if meta.Repeat {
		subject = "[repeat] " + subject
	}
	return Complaint{Subject: subject, Body: sb.String()}, nil
}
