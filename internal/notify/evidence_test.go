package notify

import (
	"strings"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/malwaredb"
	"iotscope/internal/netx"
)

// tinyWorld hand-builds a two-operator world: devices 0 and 1 belong to
// ISP 0, device 2 to ISP 1. Device 1 is a whisperer under any reasonable
// noise floor.
func tinyWorld(t *testing.T) (*correlate.Result, *devicedb.Inventory, *geo.Registry) {
	t.Helper()
	reg, err := geo.Build(geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   4,
		ISPsPerCountryMin: 1,
		ISPsPerCountryMax: 2,
		PrefixBits:        16,
		PrefixesPerISP:    1,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := devicedb.NewInventory([]devicedb.Device{
		{ID: 0, IP: netx.Addr(0x0a000001), Category: devicedb.Consumer,
			Type: devicedb.TypeRouter, ISP: 0},
		{ID: 1, IP: netx.Addr(0x0a000002), Category: devicedb.Consumer,
			Type: devicedb.TypeIPCamera, ISP: 0},
		{ID: 2, IP: netx.Addr(0x0a000003), Category: devicedb.Consumer,
			Type: devicedb.TypeDVR, ISP: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := func(id int, scan, udp uint64, days uint64) *correlate.DeviceStats {
		ds := &correlate.DeviceStats{ID: id, Records: scan + udp, DayMask: days}
		ds.Packets[classify.ScanTCP.Index()] = scan
		ds.Packets[classify.UDP.Index()] = udp
		return ds
	}
	res := &correlate.Result{
		Hours: 24,
		Devices: map[int]*correlate.DeviceStats{
			0: stats(0, 900, 100, 0b0111),
			1: stats(1, 3, 0, 0b0001), // below a floor of 10
			2: stats(2, 0, 500, 0b0001),
		},
		UDPPorts: map[uint16]*correlate.PortAgg{
			5060: {Packets: 80, Devices: []int32{0, 2}},
			123:  {Packets: 20, Devices: []int32{0}},
		},
		TCPScanPorts: map[uint16]*correlate.TCPPortAgg{
			23:   {Packets: 600, DevicesConsumer: []int32{0, 1}},
			2323: {Packets: 300, DevicesConsumer: []int32{0}},
		},
	}
	return res, inv, reg
}

// The satellite pin: a device under the MinPackets floor contributes
// NOTHING — not to the operator's packet totals, not to the port evidence,
// not to the device list. Filtering happens before aggregation.
func TestFilterPrecedesAggregation(t *testing.T) {
	res, inv, reg := tinyWorld(t)
	bundles := BuildBundles(Sources{Result: res, Inventory: inv, Registry: reg},
		Config{MinDevices: 1, MinPackets: 10})

	var isp0 *Bundle
	for i := range bundles {
		if bundles[i].ISPIndex == 0 {
			isp0 = &bundles[i]
		}
	}
	if isp0 == nil {
		t.Fatal("no bundle for ISP 0")
	}
	if len(isp0.Devices) != 1 || isp0.Devices[0].Device != 0 {
		t.Fatalf("ISP 0 devices: %+v", isp0.Devices)
	}
	// Device 1's 3 packets must not leak into the totals.
	if isp0.Packets != 1000 {
		t.Fatalf("ISP 0 packets %d, want 1000 (filtered device aggregated)", isp0.Packets)
	}
	if isp0.Records != 1000 {
		t.Fatalf("ISP 0 records %d, want 1000", isp0.Records)
	}
	// Port evidence is indexed only over surviving devices: port 23 lists
	// devices 0 and 1, but only device 0 survives.
	d0 := isp0.Devices[0]
	if len(d0.TCPPorts) != 2 || d0.TCPPorts[0] != 23 || d0.TCPPorts[1] != 2323 {
		t.Fatalf("device 0 tcp ports %v", d0.TCPPorts)
	}
	if len(d0.UDPPorts) != 2 || d0.UDPPorts[0] != 123 || d0.UDPPorts[1] != 5060 {
		t.Fatalf("device 0 udp ports %v", d0.UDPPorts)
	}
	if d0.ActiveDays != 3 {
		t.Fatalf("device 0 active days %d", d0.ActiveDays)
	}
}

// The wgen-backed invariant: with no noise floor, bundle totals still cover
// every inferred packet (the pre-existing TestBuildBundles contract), and
// with a floor the totals equal exactly the sum over surviving devices.
func TestFilteredTotalsAreConsistent(t *testing.T) {
	g, res, _ := buildWorld(t)
	cfg := Config{MinDevices: 1, MinPackets: 50}
	bundles := Build(res, g.Inventory(), g.Registry(), nil, cfg)
	var want uint64
	for _, ds := range res.Devices {
		if ds.TotalPackets() >= cfg.MinPackets {
			want += ds.TotalPackets()
		}
	}
	var got uint64
	for _, b := range bundles {
		var inBundle uint64
		for _, d := range b.Devices {
			if d.Packets < cfg.MinPackets {
				t.Fatalf("device %d below floor survived", d.Device)
			}
			inBundle += d.Packets
		}
		if inBundle != b.Packets {
			t.Fatalf("bundle %s totals %d, devices sum to %d", b.ISP, b.Packets, inBundle)
		}
		got += b.Packets
	}
	if got != want {
		t.Fatalf("filtered totals %d, want %d", got, want)
	}
}

func TestMalwareEvidence(t *testing.T) {
	res, inv, reg := tinyWorld(t)
	db := malwaredb.NewDB()
	add := func(sha, ip string) {
		t.Helper()
		if err := db.Add(&malwaredb.Report{
			SHA256:  sha,
			Network: malwaredb.Network{Connections: []malwaredb.Connection{{IP: ip, Port: 23, Protocol: "tcp"}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("aaaa", "10.0.0.1")
	add("bbbb", "10.0.0.1")
	add("cccc", "10.0.0.3")
	cat := malwaredb.NewCatalog(map[string]string{"aaaa": "Ramnit", "bbbb": "Zusy"})

	bundles := BuildBundles(Sources{
		Result: res, Inventory: inv, Registry: reg,
		Malware: db, Catalog: cat,
	}, DefaultConfig())

	byDevice := make(map[int]DeviceEntry)
	for _, b := range bundles {
		for _, d := range b.Devices {
			byDevice[d.Device] = d
		}
	}
	d0 := byDevice[0]
	if len(d0.MalwareHashes) != 2 || d0.MalwareHashes[0] != "aaaa" || d0.MalwareHashes[1] != "bbbb" {
		t.Fatalf("device 0 hashes %v", d0.MalwareHashes)
	}
	if len(d0.MalwareFamilies) != 2 || d0.MalwareFamilies[0] != "Ramnit" || d0.MalwareFamilies[1] != "Zusy" {
		t.Fatalf("device 0 families %v", d0.MalwareFamilies)
	}
	// Device 2's sample is not in the catalog: evidence survives as
	// "unclassified".
	d2 := byDevice[2]
	if len(d2.MalwareFamilies) != 1 || d2.MalwareFamilies[0] != "unclassified" {
		t.Fatalf("device 2 families %v", d2.MalwareFamilies)
	}
	// Device 1 has no hits.
	if len(byDevice[1].MalwareHashes) != 0 {
		t.Fatalf("device 1 hashes %v", byDevice[1].MalwareHashes)
	}
}

func TestRenderComplaint(t *testing.T) {
	res, inv, reg := tinyWorld(t)
	bundles := BuildBundles(Sources{Result: res, Inventory: inv, Registry: reg},
		Config{MinDevices: 1, MinPackets: 10})
	meta := ComplaintMeta{
		Contact: "abuse@example.net", Tier: "registry", WindowHours: 24,
	}
	c, err := RenderComplaint(bundles[0], meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		bundles[0].ISP, "unsolicited packets", "behaviours:", "tcp ports scanned: 23, 2323",
		"24 hours", "registry contact record", "abuse@example.net",
	} {
		if !strings.Contains(c.Body, want) {
			t.Fatalf("complaint body missing %q:\n%s", want, c.Body)
		}
	}
	if strings.Contains(c.Body, "follow-up report") {
		t.Fatal("first report rendered as repeat")
	}
	if !strings.Contains(c.Subject, "[abuse]") || strings.Contains(c.Subject, "[repeat]") {
		t.Fatalf("subject %q", c.Subject)
	}

	meta.Repeat = true
	meta.WindowHours = 48
	c, err = RenderComplaint(bundles[0], meta)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Body, "follow-up report") || !strings.Contains(c.Body, "48 hours") {
		t.Fatalf("repeat complaint missing window language:\n%s", c.Body)
	}
	if !strings.HasPrefix(c.Subject, "[repeat]") {
		t.Fatalf("repeat subject %q", c.Subject)
	}
}

// Port evidence is capped so a wide sweep does not explode the report.
func TestPortEvidenceCap(t *testing.T) {
	res, inv, reg := tinyWorld(t)
	for p := uint16(10000); p < 10100; p++ {
		res.TCPScanPorts[p] = &correlate.TCPPortAgg{Packets: 1, DevicesConsumer: []int32{0}}
	}
	bundles := BuildBundles(Sources{Result: res, Inventory: inv, Registry: reg}, DefaultConfig())
	for _, b := range bundles {
		for _, d := range b.Devices {
			if len(d.TCPPorts) > MaxPortsPerDevice {
				t.Fatalf("device %d carries %d ports", d.Device, len(d.TCPPorts))
			}
		}
	}
}
