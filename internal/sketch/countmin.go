package sketch

import "errors"

// CountMin is a Count-Min sketch: a fixed-memory frequency table with
// one-sided (over-)estimation error. The analysis layer uses it to keep
// per-port packet counters when the port space (65 536 ports x protocols x
// hours) would otherwise dominate memory.
type CountMin struct {
	rows  [][]uint64
	width uint64
	seeds []uint64
}

// NewCountMin returns a sketch with depth hash rows of the given width.
// Error is roughly 2*N/width with probability 1 - 2^-depth for N insertions.
func NewCountMin(depth, width int) (*CountMin, error) {
	if depth < 1 || width < 1 {
		return nil, errors.New("sketch: CountMin needs depth >= 1 and width >= 1")
	}
	rows := make([][]uint64, depth)
	seeds := make([]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
		seeds[i] = Hash64(uint64(i) + 0x51ed270b)
	}
	return &CountMin{rows: rows, width: uint64(width), seeds: seeds}, nil
}

// Add increments key's counter by delta.
func (c *CountMin) Add(key uint64, delta uint64) {
	for i, row := range c.rows {
		row[Hash64(key^c.seeds[i])%c.width] += delta
	}
}

// Count returns an upper-bound estimate of the total delta added for key.
func (c *CountMin) Count(key uint64) uint64 {
	min := ^uint64(0)
	for i, row := range c.rows {
		if v := row[Hash64(key^c.seeds[i])%c.width]; v < min {
			min = v
		}
	}
	return min
}

// ErrShapeMismatch is returned by CountMin.Merge when the two sketches have
// different dimensions. A package-level sentinel keeps Merge allocation-free
// on every path.
var ErrShapeMismatch = errors.New("sketch: cannot merge CountMin of different shape")

// Merge folds other into c. Dimensions must match. Allocation-free on
// matched dimensions (see BenchmarkCountMinMerge).
func (c *CountMin) Merge(other *CountMin) error {
	if len(c.rows) != len(other.rows) || c.width != other.width {
		return ErrShapeMismatch
	}
	for i := range c.rows {
		dst, src := c.rows[i], other.rows[i]
		for j, v := range src {
			dst[j] += v
		}
	}
	return nil
}

// Reset clears all counters.
func (c *CountMin) Reset() {
	for _, row := range c.rows {
		for j := range row {
			row[j] = 0
		}
	}
}
