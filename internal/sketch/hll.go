// Package sketch provides streaming approximation structures for
// telescope-scale analytics. The CAIDA telescope the paper draws from sees
// over a billion packets per hour; counting unique destination addresses and
// ports exactly per hour is feasible at our simulation scale but not at the
// paper's, so the analysis layer can swap the exact netx.Set counters for a
// HyperLogLog, and frequency tables for a Count-Min sketch. An ablation
// bench (BenchmarkAblationSketch) quantifies the trade.
package sketch

import (
	"errors"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality estimator with 2^precision registers.
type HLL struct {
	registers []uint8
	precision uint8
}

// NewHLL returns an estimator with 2^precision registers. Precision must be
// in [4, 18]; 14 gives a standard error of about 0.8 % in 16 KiB.
func NewHLL(precision int) (*HLL, error) {
	if precision < 4 || precision > 18 {
		return nil, errors.New("sketch: HLL precision must be in [4, 18]")
	}
	return &HLL{
		registers: make([]uint8, 1<<uint(precision)),
		precision: uint8(precision),
	}, nil
}

// Add inserts a pre-hashed 64-bit item. Callers hash their keys with Hash64.
func (h *HLL) Add(hash uint64) {
	p := uint(h.precision)
	idx := hash >> (64 - p)
	rest := hash<<p | 1<<(p-1) // ensure a terminating bit
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// AddAddr inserts a 32-bit key (e.g. an IPv4 address or port).
func (h *HLL) AddAddr(v uint32) { h.Add(Hash64(uint64(v))) }

// Estimate returns the approximate number of distinct items added.
func (h *HLL) Estimate() uint64 {
	m := float64(len(h.registers))
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaM(len(h.registers))
	est := alpha * m * m / sum
	// Linear counting for small cardinalities.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	if est < 0 {
		return 0
	}
	return uint64(est + 0.5)
}

// ErrPrecisionMismatch is returned by HLL.Merge when the two sketches were
// built with different precisions. It is a package-level sentinel so the
// merge itself never allocates — the shard merge plane calls Merge once per
// (shard, hour, category) cell and relies on it being allocation-free.
var ErrPrecisionMismatch = errors.New("sketch: cannot merge HLLs of different precision")

// Merge folds other into h. Both sketches must share a precision.
// Allocation-free on matched precisions (see BenchmarkHLLMerge).
func (h *HLL) Merge(other *HLL) error {
	if h.precision != other.precision {
		return ErrPrecisionMismatch
	}
	dst := h.registers
	for i, r := range other.registers {
		if r > dst[i] {
			dst[i] = r
		}
	}
	return nil
}

// Reset clears the sketch for reuse.
func (h *HLL) Reset() {
	for i := range h.registers {
		h.registers[i] = 0
	}
}

// Precision returns the sketch's configured precision.
func (h *HLL) Precision() int { return int(h.precision) }

// AppendRegisters appends a copy of the register array to dst and returns
// it — the export half of checkpointing a running estimator. Together with
// Precision it captures the sketch's complete state.
func (h *HLL) AppendRegisters(dst []uint8) []uint8 {
	return append(dst, h.registers...)
}

// RestoreHLL rebuilds an estimator from a (precision, registers) pair
// previously captured with Precision/AppendRegisters. The register slice is
// copied, and its length must match 2^precision exactly.
func RestoreHLL(precision int, registers []uint8) (*HLL, error) {
	h, err := NewHLL(precision)
	if err != nil {
		return nil, err
	}
	if len(registers) != len(h.registers) {
		return nil, errors.New("sketch: register count does not match precision")
	}
	copy(h.registers, registers)
	return h, nil
}

func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Hash64 is a splitmix64-style finalizer used to hash fixed-width keys
// before sketch insertion.
func Hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
