package sketch

import (
	"testing"
)

// The shard merge plane calls Merge O(shards x hour-cells) times; both
// merges must be allocation-free on matched dimensions so the plane's cost
// is pure register arithmetic.

func TestHLLMergeAllocationFree(t *testing.T) {
	a, err := NewHLL(12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHLL(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4096; i++ {
		a.AddAddr(i)
		b.AddAddr(i * 7)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("HLL.Merge allocated %.1f objects per run, want 0", allocs)
	}
	// Mismatched precision must also stay allocation-free: the sentinel is
	// package-level, not built per call.
	c, err := NewHLL(10)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := a.Merge(c); err != ErrPrecisionMismatch {
			t.Fatalf("got %v, want ErrPrecisionMismatch", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("HLL.Merge (mismatch path) allocated %.1f objects per run, want 0", allocs)
	}
}

func TestCountMinMergeAllocationFree(t *testing.T) {
	a, err := NewCountMin(4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCountMin(4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		a.Add(i, 3)
		b.Add(i*11, 5)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CountMin.Merge allocated %.1f objects per run, want 0", allocs)
	}
	c, err := NewCountMin(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if err := a.Merge(c); err != ErrShapeMismatch {
			t.Fatalf("got %v, want ErrShapeMismatch", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CountMin.Merge (mismatch path) allocated %.1f objects per run, want 0", allocs)
	}
}

func BenchmarkHLLMerge(b *testing.B) {
	x, err := NewHLL(14)
	if err != nil {
		b.Fatal(err)
	}
	y, err := NewHLL(14)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint32(0); i < 1<<16; i++ {
		x.AddAddr(i)
		y.AddAddr(i * 2654435761)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountMinMerge(b *testing.B) {
	x, err := NewCountMin(4, 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	y, err := NewCountMin(4, 1<<14)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 1<<14; i++ {
		x.Add(i, 1)
		y.Add(i*31, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}
