package sketch

import (
	"math"
	"testing"

	"iotscope/internal/rng"
)

func TestNewHLLPrecisionBounds(t *testing.T) {
	for _, p := range []int{3, 19, -1} {
		if _, err := NewHLL(p); err == nil {
			t.Errorf("precision %d accepted", p)
		}
	}
	for _, p := range []int{4, 14, 18} {
		if _, err := NewHLL(p); err != nil {
			t.Errorf("precision %d rejected: %v", p, err)
		}
	}
}

func TestHLLEmpty(t *testing.T) {
	h, _ := NewHLL(12)
	if got := h.Estimate(); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
}

func TestHLLAccuracy(t *testing.T) {
	r := rng.New(7)
	for _, n := range []uint64{10, 100, 1000, 50000, 500000} {
		h, _ := NewHLL(14)
		for i := uint64(0); i < n; i++ {
			h.Add(r.Uint64())
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %v (rel err %.3f)", n, got, relErr)
		}
	}
}

func TestHLLDuplicatesIgnored(t *testing.T) {
	h, _ := NewHLL(12)
	for i := 0; i < 100000; i++ {
		h.AddAddr(uint32(i % 50))
	}
	est := h.Estimate()
	if est < 45 || est > 55 {
		t.Fatalf("50 distinct keys estimated as %d", est)
	}
}

func TestHLLMerge(t *testing.T) {
	r := rng.New(11)
	a, _ := NewHLL(13)
	b, _ := NewHLL(13)
	union, _ := NewHLL(13)
	for i := 0; i < 30000; i++ {
		v := r.Uint64()
		a.Add(v)
		union.Add(v)
	}
	for i := 0; i < 30000; i++ {
		v := r.Uint64()
		b.Add(v)
		union.Add(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ea, eu := float64(a.Estimate()), float64(union.Estimate())
	if math.Abs(ea-eu)/eu > 0.01 {
		t.Fatalf("merged estimate %v != union estimate %v", ea, eu)
	}
}

func TestHLLMergePrecisionMismatch(t *testing.T) {
	a, _ := NewHLL(12)
	b, _ := NewHLL(13)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched merge accepted")
	}
}

func TestHLLReset(t *testing.T) {
	h, _ := NewHLL(12)
	for i := uint32(0); i < 1000; i++ {
		h.AddAddr(i)
	}
	h.Reset()
	if got := h.Estimate(); got != 0 {
		t.Fatalf("estimate after reset = %d", got)
	}
}

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 10); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewCountMin(3, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	r := rng.New(13)
	c, _ := NewCountMin(4, 1024)
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(500))
		c.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := c.Count(k); got < want {
			t.Fatalf("key %d: count %d < truth %d", k, got, want)
		}
	}
}

func TestCountMinAccuracyOnHeavyHitters(t *testing.T) {
	r := rng.New(17)
	c, _ := NewCountMin(4, 4096)
	z := rng.NewZipf(1000, 1.2)
	truth := make(map[uint64]uint64)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := uint64(z.Sample(r))
		c.Add(k, 1)
		truth[k]++
	}
	// Heavy hitters must be within the sketch's additive error bound.
	bound := uint64(2*draws/4096) + 1
	for k := uint64(1); k <= 10; k++ {
		got, want := c.Count(k), truth[k]
		if got-want > bound {
			t.Errorf("key %d: overestimate %d beyond bound %d", k, got-want, bound)
		}
	}
}

func TestCountMinMerge(t *testing.T) {
	a, _ := NewCountMin(3, 512)
	b, _ := NewCountMin(3, 512)
	a.Add(42, 5)
	b.Add(42, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(42); got < 12 {
		t.Fatalf("merged count %d < 12", got)
	}
	other, _ := NewCountMin(3, 256)
	if err := a.Merge(other); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCountMinReset(t *testing.T) {
	c, _ := NewCountMin(3, 128)
	c.Add(1, 100)
	c.Reset()
	if got := c.Count(1); got != 0 {
		t.Fatalf("count after reset = %d", got)
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = true
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h, _ := NewHLL(14)
	for i := 0; i < b.N; i++ {
		h.AddAddr(uint32(i))
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	c, _ := NewCountMin(4, 8192)
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i&4095), 1)
	}
}
