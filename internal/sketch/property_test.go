package sketch

import (
	"testing"
	"testing/quick"

	"iotscope/internal/rng"
)

// Property: HLL merge is commutative — merge(A,B) estimates like merge(B,A).
func TestHLLMergeCommutativeProperty(t *testing.T) {
	f := func(seedA, seedB uint64, nA, nB uint16) bool {
		build := func(seed uint64, n int) *HLL {
			h, _ := NewHLL(12)
			r := rng.New(seed)
			for i := 0; i < n; i++ {
				h.Add(r.Uint64())
			}
			return h
		}
		ab := build(seedA, int(nA)%2000)
		ab2 := build(seedB, int(nB)%2000)
		if err := ab.Merge(ab2); err != nil {
			return false
		}

		ba := build(seedB, int(nB)%2000)
		ba2 := build(seedA, int(nA)%2000)
		if err := ba.Merge(ba2); err != nil {
			return false
		}
		return ab.Estimate() == ba.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a sketch into itself is idempotent for the estimate.
func TestHLLMergeIdempotentProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		h, _ := NewHLL(12)
		r := rng.New(seed)
		for i := 0; i < int(n)%3000; i++ {
			h.Add(r.Uint64())
		}
		before := h.Estimate()
		clone, _ := NewHLL(12)
		clone.Merge(h)
		clone.Merge(h)
		return clone.Estimate() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountMin counts are monotone under additional insertions.
func TestCountMinMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c, _ := NewCountMin(3, 256)
		r := rng.New(seed)
		key := uint64(42)
		prev := uint64(0)
		for i := 0; i < int(n)%500+1; i++ {
			c.Add(uint64(r.Intn(64)), 1)
			cur := c.Count(key)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
