package apiserve

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"iotscope/internal/core"
)

var (
	srvOnce sync.Once
	srvErr  error
	srv     *Server
	srvDS   *core.Dataset
	srvRes  *core.Results
)

const testToken = "test-token-123"

func loadServer(t testing.TB) *Server {
	t.Helper()
	srvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "apiserve-*")
		if err != nil {
			srvErr = err
			return
		}
		defer os.RemoveAll(dir)
		cfg := core.DefaultConfig(0.004, 303)
		cfg.Hours = 48
		srvDS, srvErr = core.Generate(cfg, dir)
		if srvErr != nil {
			return
		}
		srvRes, srvErr = srvDS.Analyze(cfg)
		if srvErr != nil {
			return
		}
		srv, srvErr = New(srvDS, srvRes, []string{testToken})
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

// get performs an authorized GET and decodes the JSON body.
func get(t *testing.T, s *Server, path string, token string) (int, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON: %v (%q)", path, err, rec.Body.String())
	}
	return rec.Code, body
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, []string{"x"}); err == nil {
		t.Error("nil dataset accepted")
	}
	s := loadServer(t)
	_ = s
	if _, err := New(srvDS, srvRes, nil); err == nil {
		t.Error("no tokens accepted")
	}
	if _, err := New(srvDS, srvRes, []string{""}); err == nil {
		t.Error("empty token accepted")
	}
}

func TestHealthUnauthenticated(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health: %d %v", code, body)
	}
	// Ingestion health rides on the liveness payload: a clean analysis
	// reports every hour OK and nothing quarantined.
	ingest, ok := body["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("health payload lacks ingest stats: %v", body)
	}
	if ingest["hoursOk"].(float64) != float64(srvDS.Scenario.Hours) {
		t.Fatalf("ingest hoursOk %v, want %d", ingest["hoursOk"], srvDS.Scenario.Hours)
	}
	if ingest["hoursQuarantined"].(float64) != 0 {
		t.Fatalf("clean dataset reports quarantined hours: %v", ingest)
	}
}

// One poisoned request must not take the server down, and the next request
// must still be served.
func TestPanicRecovery(t *testing.T) {
	s := loadServer(t)
	log.SetOutput(io.Discard) // the recovered stack is expected noise here
	defer log.SetOutput(os.Stderr)
	s.mux.HandleFunc("GET /v1/panic-test", func(http.ResponseWriter, *http.Request) {
		panic("boom")
	})
	code, body := get(t, s, "/v1/panic-test", "")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d %v", code, body)
	}
	if body["error"] == "" {
		t.Fatalf("panic response lacks error body: %v", body)
	}
	if code, _ := get(t, s, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("server unhealthy after recovered panic: %d", code)
	}
}

func TestAuthRequired(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/summary", "")
	if code != http.StatusUnauthorized {
		t.Fatalf("no token: %d %v", code, body)
	}
	code, _ = get(t, s, "/v1/summary", "wrong-token")
	if code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d", code)
	}
	code, _ = get(t, s, "/v1/summary", testToken)
	if code != http.StatusOK {
		t.Fatalf("good token: %d", code)
	}
}

func TestSummary(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/summary", testToken)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	summary, ok := body["summary"].(map[string]any)
	if !ok || summary["Total"].(float64) <= 0 {
		t.Fatalf("summary %v", body)
	}
}

func TestDevicesListAndFilters(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/devices?limit=5", testToken)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	devices := body["devices"].([]any)
	if len(devices) != 5 {
		t.Fatalf("devices %d", len(devices))
	}
	total := int(body["total"].(float64))
	if total <= 5 {
		t.Fatalf("total %d", total)
	}

	// Country filter returns only that country.
	code, body = get(t, s, "/v1/devices?country=RU&limit=100", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	for _, d := range body["devices"].([]any) {
		if d.(map[string]any)["country"] != "RU" {
			t.Fatalf("country filter leak: %v", d)
		}
	}

	// Category filter.
	code, body = get(t, s, "/v1/devices?category=cps&limit=100", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	for _, d := range body["devices"].([]any) {
		if d.(map[string]any)["category"] != "cps" {
			t.Fatalf("category filter leak: %v", d)
		}
	}

	// Pagination offset.
	_, page1 := get(t, s, "/v1/devices?limit=3&offset=0", testToken)
	_, page2 := get(t, s, "/v1/devices?limit=3&offset=3", testToken)
	id1 := page1["devices"].([]any)[0].(map[string]any)["id"]
	id2 := page2["devices"].([]any)[0].(map[string]any)["id"]
	if id1 == id2 {
		t.Fatal("pagination returned the same page")
	}

	// Validation errors.
	if code, _ := get(t, s, "/v1/devices?limit=0", testToken); code != http.StatusBadRequest {
		t.Fatalf("limit 0 accepted: %d", code)
	}
	if code, _ := get(t, s, "/v1/devices?category=weird", testToken); code != http.StatusBadRequest {
		t.Fatalf("bad category accepted: %d", code)
	}
}

func TestDeviceDetail(t *testing.T) {
	s := loadServer(t)
	// Find an inferred device ID.
	var id int
	for did := range srvRes.Correlate.Devices {
		id = did
		break
	}
	code, body := get(t, s, "/v1/devices/"+itoa(id), testToken)
	if code != http.StatusOK {
		t.Fatalf("code %d %v", code, body)
	}
	dev := body["device"].(map[string]any)
	if int(dev["id"].(float64)) != id || dev["packets"].(float64) <= 0 {
		t.Fatalf("device %v", dev)
	}
	if code, _ := get(t, s, "/v1/devices/99999999", testToken); code != http.StatusNotFound {
		t.Fatalf("phantom device: %d", code)
	}
	if code, _ := get(t, s, "/v1/devices/abc", testToken); code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", code)
	}
}

func TestThreats(t *testing.T) {
	s := loadServer(t)
	// Find a flagged device.
	if len(srvRes.Threat.Flagged) == 0 {
		t.Skip("no flagged devices at this scale/seed")
	}
	id := srvRes.Threat.Flagged[0].Device
	ip := srvDS.Inventory.At(id).IP.String()
	code, body := get(t, s, "/v1/threats/"+ip, testToken)
	if code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(body["events"].([]any)) == 0 {
		t.Fatalf("no events for flagged IP %s", ip)
	}
	if code, _ := get(t, s, "/v1/threats/999.1.1.1", testToken); code != http.StatusBadRequest {
		t.Fatalf("bad IP accepted: %d", code)
	}
	// Unknown IP: empty list, not an error.
	code, body = get(t, s, "/v1/threats/1.2.3.4", testToken)
	if code != http.StatusOK || len(body["events"].([]any)) != 0 {
		t.Fatalf("unknown IP: %d %v", code, body)
	}
}

func TestSpikes(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/spikes", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	spikes := body["spikes"].([]any)
	if len(spikes) == 0 {
		t.Fatal("no spikes detected (scripted events should be present)")
	}
	first := spikes[0].(map[string]any)
	if first["victimShare"].(float64) <= 0 {
		t.Fatalf("spike %v", first)
	}
	if code, _ := get(t, s, "/v1/spikes?threshold=0.5", testToken); code != http.StatusBadRequest {
		t.Fatalf("bad threshold accepted: %d", code)
	}
}

func TestPortsAndSignatures(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/ports/tcp", testToken)
	if code != http.StatusOK || len(body["services"].([]any)) != 14 {
		t.Fatalf("tcp ports: %d %v", code, body["services"])
	}
	code, body = get(t, s, "/v1/ports/udp?n=5", testToken)
	if code != http.StatusOK || len(body["ports"].([]any)) != 5 {
		t.Fatalf("udp ports: %d", code)
	}
	code, body = get(t, s, "/v1/signatures", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	sigs := body["signatures"].([]any)
	if len(sigs) < 10 {
		t.Fatalf("signatures %d", len(sigs))
	}
	names := map[string]bool{}
	for _, sig := range sigs {
		names[sig.(map[string]any)["name"].(string)] = true
	}
	if !names["Telnet"] || !names["udp-37547"] {
		t.Fatalf("expected signatures missing: %v", names)
	}
}

func TestCampaignsAndMalware(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/campaigns", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if len(body["campaigns"].([]any)) == 0 {
		t.Fatal("no campaigns")
	}
	code, body = get(t, s, "/v1/malware", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if len(body["hashes"].([]any)) == 0 || len(body["families"].([]any)) == 0 {
		t.Fatalf("malware empty: %v", body)
	}
}

func TestReports(t *testing.T) {
	s := loadServer(t)
	code, body := get(t, s, "/v1/reports", testToken)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	reports := body["reports"].([]any)
	if len(reports) == 0 {
		t.Fatal("no abuse reports")
	}
	first := reports[0].(map[string]any)
	if first["isp"] == "" || len(first["devices"].([]any)) == 0 {
		t.Fatalf("report %v", first)
	}
	if code, _ := get(t, s, "/v1/reports?minDevices=0", testToken); code != http.StatusBadRequest {
		t.Fatalf("minDevices 0 accepted: %d", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := loadServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/summary", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST allowed: %d", rec.Code)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Provenance rides on the snapshot block of /healthz: a store-loaded
// snapshot names its artifact and codec version, and a recorded store
// fallback degrades health without taking the endpoint down.
func TestHealthSnapshotProvenance(t *testing.T) {
	loadServer(t)
	s, err := New(srvDS, srvRes, []string{testToken})
	if err != nil {
		t.Fatal(err)
	}

	// No provenance reported: the snapshot block keeps its legacy shape.
	_, body := get(t, s, "/healthz", "")
	snap := body["snapshot"].(map[string]any)
	if _, ok := snap["source"]; ok {
		t.Fatalf("source reported without SetProvenance: %v", snap)
	}

	s.SetProvenance(core.Provenance{Source: "store", StorePath: "/data/snap.irs", CodecVersion: 1})
	code, body := get(t, s, "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("store provenance: %d %v", code, body)
	}
	snap = body["snapshot"].(map[string]any)
	if snap["source"] != "store" || snap["store"] != "/data/snap.irs" || snap["codecVersion"].(float64) != 1 {
		t.Fatalf("snapshot block = %v, want store provenance", snap)
	}

	// A fallback is a promise broken: the server runs, but not from the
	// artifact it was configured with — health must say degraded.
	s.SetProvenance(core.Provenance{Source: "analyze", Fallback: "store corrupt"})
	code, body = get(t, s, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("degraded must still answer 200, got %d", code)
	}
	if body["status"] != "degraded" {
		t.Fatalf("status = %v, want degraded on store fallback", body["status"])
	}
	snap = body["snapshot"].(map[string]any)
	if snap["source"] != "analyze" || snap["storeFallback"] != "store corrupt" {
		t.Fatalf("snapshot block = %v, want fallback provenance", snap)
	}
}
