// Package apiserve implements the authenticated sharing API the paper's
// Discussion commits to ("an authenticated API to share IoT-relevant
// malicious empirical data, IoT-centric attack signatures, and threat
// intelligence derived from passive measurements with the research
// community"). It exposes an analyzed dataset over HTTP/JSON behind bearer
// tokens: inferred devices, threat events, DoS episodes, port tables,
// derived attack signatures, campaigns, and malware indicators.
//
// The server is built for always-on operation: it serves from an
// atomically swapped immutable Snapshot (hot reload without restart or
// request tearing), recovers handler panics, reports lifecycle state on
// /healthz (ok / degraded / draining), and optionally applies admission
// control — a concurrency cap that sheds with 503 + Retry-After, a
// per-token rate limit that rejects with 429 + Retry-After, and a
// per-request context deadline (see internal/resilience).
package apiserve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"iotscope/internal/analysis"
	"iotscope/internal/campaign"
	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
	"iotscope/internal/pipeline"
	"iotscope/internal/resilience"
	"iotscope/internal/stream"
)

// Server serves analyzed datasets, one immutable snapshot at a time.
type Server struct {
	snap atomic.Pointer[Snapshot]
	gen  atomic.Uint64

	// tokens holds SHA-256 digests of the configured bearer tokens, so
	// verification compares fixed-size digests and neither timing nor
	// short-circuiting can leak token length or bytes.
	tokens  [][sha256.Size]byte
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in admission-control middleware

	draining   atomic.Bool
	reloadFail atomic.Pointer[reloadFailure]
	// loadRep is the latest snapshot load's per-stage pipeline report
	// (successful or not), served read-only on /v1/pipeline.
	loadRep atomic.Pointer[pipeline.Report]
	// prov is the provenance of the currently served snapshot's analyzed
	// state (result store vs raw analysis); nil when the caller never
	// reported one.
	prov atomic.Pointer[core.Provenance]

	limiter *resilience.Limiter
	rate    *resilience.RateLimiter
	timeout time.Duration
	clock   func() time.Time

	// alerts, when wired via WithAlerts, serves the streaming collector's
	// low-latency alert feed on /v1/alerts (long-poll) and
	// /v1/alerts/stream (SSE).
	alerts *stream.Hub
}

// Option customizes a Server at construction.
type Option func(*Server) error

// WithConcurrencyLimit caps in-flight requests at max; excess requests
// are shed with 503 and a Retry-After of retryAfter. /healthz is exempt.
func WithConcurrencyLimit(max int, retryAfter time.Duration) Option {
	return func(s *Server) error {
		l, err := resilience.NewLimiter(max, retryAfter)
		if err != nil {
			return err
		}
		s.limiter = l
		return nil
	}
}

// WithRateLimit grants each API token rate requests/second with the given
// burst; excess requests are rejected with 429 and Retry-After.
func WithRateLimit(rate float64, burst int) Option {
	return func(s *Server) error {
		rl, err := resilience.NewRateLimiter(rate, burst)
		if err != nil {
			return err
		}
		s.rate = rl
		return nil
	}
}

// WithAlerts mounts a streaming collector's alert hub: GET /v1/alerts
// answers with the journaled backlog after ?since=N and long-polls with
// ?wait=DURATION; GET /v1/alerts/stream is a Server-Sent Events feed
// whose event IDs are alert IDs, so Last-Event-ID reconnects resume
// exactly. Both sit behind the same bearer-token auth as the rest of the
// API. Note that WithRequestTimeout applies to these too — a cut stream
// or long-poll is the client's cue to reconnect; no alert is lost, the
// journal replays the gap.
func WithAlerts(hub *stream.Hub) Option {
	return func(s *Server) error {
		if hub == nil {
			return fmt.Errorf("apiserve: nil alert hub")
		}
		s.alerts = hub
		return nil
	}
}

// WithRequestTimeout propagates a per-request context deadline of d to
// every handler.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("apiserve: request timeout %v must be positive", d)
		}
		s.timeout = d
		return nil
	}
}

// New builds a server over the dataset and its analysis results. At least
// one bearer token is required. Options wire admission control; without
// them the server accepts every authenticated request.
func New(ds *core.Dataset, res *core.Results, tokens []string, opts ...Option) (*Server, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("apiserve: at least one API token is required")
	}
	s := &Server{
		mux:   http.NewServeMux(),
		clock: time.Now,
	}
	for _, t := range tokens {
		if t == "" {
			return nil, fmt.Errorf("apiserve: empty API token")
		}
		s.tokens = append(s.tokens, sha256.Sum256([]byte(t)))
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if _, err := s.Swap(ds, res); err != nil {
		return nil, err
	}
	s.routes()

	var h http.Handler = s.mux
	if s.timeout > 0 {
		h = resilience.WithTimeout(s.timeout, h)
	}
	if s.limiter != nil {
		h = s.limiter.Middleware(h, "/healthz")
	}
	s.handler = h
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/summary", s.auth(s.snapped((*Snapshot).handleSummary)))
	s.mux.HandleFunc("GET /v1/devices", s.auth(s.snapped((*Snapshot).handleDevices)))
	s.mux.HandleFunc("GET /v1/devices/{id}", s.auth(s.snapped((*Snapshot).handleDevice)))
	s.mux.HandleFunc("GET /v1/threats/{ip}", s.auth(s.snapped((*Snapshot).handleThreats)))
	s.mux.HandleFunc("GET /v1/spikes", s.auth(s.snapped((*Snapshot).handleSpikes)))
	s.mux.HandleFunc("GET /v1/ports/tcp", s.auth(s.snapped((*Snapshot).handleTCPPorts)))
	s.mux.HandleFunc("GET /v1/ports/udp", s.auth(s.snapped((*Snapshot).handleUDPPorts)))
	s.mux.HandleFunc("GET /v1/signatures", s.auth(s.snapped((*Snapshot).handleSignatures)))
	s.mux.HandleFunc("GET /v1/campaigns", s.auth(s.snapped((*Snapshot).handleCampaigns)))
	s.mux.HandleFunc("GET /v1/malware", s.auth(s.snapped((*Snapshot).handleMalware)))
	s.mux.HandleFunc("GET /v1/reports", s.auth(s.snapped((*Snapshot).handleReports)))
	s.mux.HandleFunc("GET /v1/pipeline", s.auth(s.handlePipeline))
	if s.alerts != nil {
		s.mux.HandleFunc("GET /v1/alerts", s.auth(s.alerts.ServeList))
		s.mux.HandleFunc("GET /v1/alerts/stream", s.auth(s.alerts.ServeStream))
	}
}

// SetLoadReport publishes the per-stage report of the latest snapshot load
// attempt (boot or hot reload, successful or rejected) for /v1/pipeline.
// The report must not be mutated after it is handed over.
func (s *Server) SetLoadReport(rep *pipeline.Report) {
	if rep != nil {
		s.loadRep.Store(rep)
	}
}

// SetProvenance publishes where the served snapshot's analyzed state came
// from (result store artifact vs raw analysis). /healthz reports it inside
// the snapshot block, and a recorded store fallback degrades health: the
// server is up but not serving from the artifact it was told to.
func (s *Server) SetProvenance(p core.Provenance) {
	s.prov.Store(&p)
}

// handlePipeline serves the latest load's pipeline report — how long each
// stage took and which one stopped a rejected reload.
func (s *Server) handlePipeline(w http.ResponseWriter, _ *http.Request) {
	rep := s.loadRep.Load()
	if rep == nil {
		writeError(w, http.StatusNotFound, "no pipeline report recorded")
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// snapped binds a snapshot-scoped handler to whatever snapshot is current
// when the request arrives. The handler keeps that snapshot for its whole
// lifetime, so a concurrent Swap can never tear a response.
func (s *Server) snapped(h func(*Snapshot, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(s.snap.Load(), w, r)
	}
}

// ServeHTTP implements http.Handler. A panicking handler is recovered so
// one poisoned request cannot take the sharing API down; the client gets a
// 500 and the stack goes to the server log. http.ErrAbortHandler keeps its
// conventional meaning and is re-raised for the http server to swallow.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		log.Printf("apiserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		writeError(w, http.StatusInternalServerError, "internal server error")
	}()
	s.handler.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// auth wraps a handler with bearer-token verification and, when
// configured, the per-token rate limit. Tokens are compared as SHA-256
// digests: every candidate is hashed and compared constant-time against
// every configured digest, so neither a length mismatch nor an early
// match can short-circuit the loop.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		const prefix = "Bearer "
		h := r.Header.Get("Authorization")
		if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
			writeError(w, http.StatusUnauthorized, "missing bearer token")
			return
		}
		sum := sha256.Sum256([]byte(h[len(prefix):]))
		ok := false
		for _, d := range s.tokens {
			if subtle.ConstantTimeCompare(d[:], sum[:]) == 1 {
				ok = true
			}
		}
		if !ok {
			writeError(w, http.StatusUnauthorized, "invalid token")
			return
		}
		if s.rate != nil {
			key := fmt.Sprintf("%x", sum[:8])
			if allowed, retry := s.rate.Allow(key); !allowed {
				resilience.ShedResponse(w, http.StatusTooManyRequests, retry,
					"rate limit exceeded for token")
				return
			}
		}
		next(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealth reports lifecycle and data health. Status is "draining"
// (with HTTP 503, so load balancers pull the instance) during shutdown,
// "degraded" when the served snapshot was computed from quarantined hours
// or the last reload attempt failed, else "ok". The snapshot block carries
// the generation and load time so operators can verify a reload landed.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	status := "ok"
	code := http.StatusOK
	if snap.res.Correlate.Ingest.HoursQuarantined > 0 {
		status = "degraded"
	}
	snapshot := map[string]any{
		"generation": snap.Generation,
		"loadedAt":   snap.LoadedAt.UTC().Format(time.RFC3339),
	}
	if p := s.prov.Load(); p != nil {
		snapshot["source"] = p.Source
		if p.StorePath != "" {
			snapshot["store"] = p.StorePath
		}
		if p.CodecVersion != 0 {
			snapshot["codecVersion"] = p.CodecVersion
		}
		if p.Fallback != "" {
			status = "degraded"
			snapshot["storeFallback"] = p.Fallback
		}
	}
	body := map[string]any{
		"hours":    snap.ds.Scenario.Hours,
		"scale":    snap.ds.Scenario.Scale,
		"ingest":   snap.res.Correlate.Ingest,
		"snapshot": snapshot,
	}
	if f := s.reloadFail.Load(); f != nil {
		status = "degraded"
		body["lastReloadError"] = map[string]any{
			"error": f.msg,
			"at":    f.at.UTC().Format(time.RFC3339),
		}
	}
	if s.limiter != nil {
		body["admission"] = s.limiter.Stats()
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body["status"] = status
	writeJSON(w, code, body)
}

func (sn *Snapshot) handleSummary(w http.ResponseWriter, _ *http.Request) {
	bs := sn.res.Analyzer.Backscatter()
	writeJSON(w, http.StatusOK, map[string]any{
		"summary":     sn.res.Summary,
		"backscatter": bs,
		"statTests":   sn.res.StatTests,
	})
}

// deviceDTO is the device wire shape.
type deviceDTO struct {
	ID          int      `json:"id"`
	IP          string   `json:"ip"`
	Category    string   `json:"category"`
	Type        string   `json:"type"`
	Country     string   `json:"country"`
	ISP         string   `json:"isp"`
	Services    []string `json:"services,omitempty"`
	FirstSeen   int      `json:"firstSeenHour"`
	Packets     uint64   `json:"packets"`
	Scanning    uint64   `json:"scanningPackets"`
	Backscatter uint64   `json:"backscatterPackets"`
	UDP         uint64   `json:"udpPackets"`
}

func (sn *Snapshot) deviceDTO(id int) deviceDTO {
	d := sn.ds.Inventory.At(id)
	st := sn.res.Correlate.Devices[id]
	dto := deviceDTO{
		ID: id, IP: d.IP.String(),
		Category: d.Category.String(), Type: d.Type.String(),
		Country: d.Country, ISP: sn.ds.Registry.ISPs[d.ISP].Name,
		Services: d.Services,
	}
	if st != nil {
		dto.FirstSeen = st.FirstSeen
		dto.Packets = st.TotalPackets()
		dto.Scanning = st.Packets[classify.ScanTCP.Index()] + st.Packets[classify.ScanICMP.Index()]
		dto.Backscatter = st.Packets[classify.Backscatter.Index()]
		dto.UDP = st.Packets[classify.UDP.Index()]
	}
	return dto
}

func (sn *Snapshot) handleDevices(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := q.Get("country")
	catFilter := q.Get("category")
	if catFilter != "" {
		if _, err := devicedb.ParseCategory(catFilter); err != nil {
			writeError(w, http.StatusBadRequest, "unknown category")
			return
		}
	}
	limit := parseIntDefault(q.Get("limit"), 100)
	offset := parseIntDefault(q.Get("offset"), 0)
	if limit < 1 || limit > 1000 || offset < 0 {
		writeError(w, http.StatusBadRequest, "limit must be 1..1000, offset >= 0")
		return
	}

	ids := make([]int, 0, len(sn.res.Correlate.Devices))
	for id := range sn.res.Correlate.Devices {
		d := sn.ds.Inventory.At(id)
		if country != "" && d.Country != country {
			continue
		}
		if catFilter != "" && d.Category.String() != catFilter {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := len(ids)
	if offset > len(ids) {
		offset = len(ids)
	}
	ids = ids[offset:]
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]deviceDTO, len(ids))
	for i, id := range ids {
		out[i] = sn.deviceDTO(id)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   total,
		"offset":  offset,
		"devices": out,
	})
}

func (sn *Snapshot) handleDevice(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad device id")
		return
	}
	if _, ok := sn.res.Correlate.Devices[id]; !ok {
		writeError(w, http.StatusNotFound, "device not inferred")
		return
	}
	dto := sn.deviceDTO(id)
	threats := sn.ds.Threat.CategoriesOf(sn.ds.Inventory.At(id).IP)
	cats := make([]string, len(threats))
	for i, c := range threats {
		cats[i] = c.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"device":           dto,
		"threatCategories": cats,
	})
}

func (sn *Snapshot) handleThreats(w http.ResponseWriter, r *http.Request) {
	ip, err := netx.ParseAddr(r.PathValue("ip"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad IP")
		return
	}
	events := sn.ds.Threat.Query(ip)
	type eventDTO struct {
		Category string `json:"category"`
		Source   string `json:"source"`
		Day      int    `json:"day"`
	}
	out := make([]eventDTO, len(events))
	for i, ev := range events {
		out[i] = eventDTO{Category: ev.Category.String(), Source: ev.Source, Day: ev.Day}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ip": ip.String(), "events": out})
}

func (sn *Snapshot) handleSpikes(w http.ResponseWriter, r *http.Request) {
	threshold := 8.0
	if v := r.URL.Query().Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 1 {
			writeError(w, http.StatusBadRequest, "threshold must be > 1")
			return
		}
		threshold = f
	}
	spikes := sn.res.Analyzer.DetectDoSSpikes(threshold)
	type spikeDTO struct {
		StartHour int     `json:"startHour"`
		EndHour   int     `json:"endHour"`
		Packets   uint64  `json:"packets"`
		Victim    int     `json:"victimDevice"`
		Share     float64 `json:"victimShare"`
		Country   string  `json:"country"`
		Category  string  `json:"category"`
	}
	out := make([]spikeDTO, len(spikes))
	for i, sp := range spikes {
		d := sn.ds.Inventory.At(sp.TopDevice)
		out[i] = spikeDTO{
			StartHour: sp.StartHour, EndHour: sp.EndHour, Packets: sp.Packets,
			Victim: sp.TopDevice, Share: sp.TopShare,
			Country: d.Country, Category: d.Category.String(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"threshold": threshold, "spikes": out})
}

func (sn *Snapshot) handleTCPPorts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"services": sn.res.Analyzer.TopScanServices(analysis.DefaultScanServices()),
	})
}

func (sn *Snapshot) handleUDPPorts(w http.ResponseWriter, r *http.Request) {
	n := parseIntDefault(r.URL.Query().Get("n"), 10)
	if n < 1 || n > 1000 {
		writeError(w, http.StatusBadRequest, "n must be 1..1000")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ports": sn.res.Analyzer.TopUDPPorts(n)})
}

// Signature is a derived IoT attack signature (the paper's contribution 2:
// "the analyzed traffic could be leveraged to design such signatures").
type Signature struct {
	Name        string   `json:"name"`
	Protocol    string   `json:"protocol"`
	Ports       []uint16 `json:"ports"`
	PacketShare float64  `json:"packetShare"`
	Devices     int      `json:"devices"`
	Realm       string   `json:"dominantRealm"`
}

func (sn *Snapshot) handleSignatures(w http.ResponseWriter, _ *http.Request) {
	var sigs []Signature
	for _, row := range sn.res.Analyzer.TopScanServices(analysis.DefaultScanServices()) {
		if row.Packets == 0 {
			continue
		}
		realm := "cps"
		if row.ConsumerPct >= 50 {
			realm = "consumer"
		}
		sigs = append(sigs, Signature{
			Name: row.Service, Protocol: "tcp-syn", Ports: row.Ports,
			PacketShare: row.Pct, Devices: row.ConsumerDevices + row.CPSDevices,
			Realm: realm,
		})
	}
	for _, row := range sn.res.Analyzer.TopUDPPorts(10) {
		sigs = append(sigs, Signature{
			Name:     fmt.Sprintf("udp-%d", row.Port),
			Protocol: "udp", Ports: []uint16{row.Port},
			PacketShare: row.Pct, Devices: row.Devices, Realm: "mixed",
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"signatures": sigs})
}

func (sn *Snapshot) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	campaigns, err := campaign.Detect(sn.res.Correlate, campaign.DefaultConfig())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": campaigns})
}

// handleReports serves the per-ISP abuse notification bundles (the paper's
// "IoT-tailored notifications ... permitting rapid remediation").
func (sn *Snapshot) handleReports(w http.ResponseWriter, r *http.Request) {
	minDevices := parseIntDefault(r.URL.Query().Get("minDevices"), 1)
	if minDevices < 1 {
		writeError(w, http.StatusBadRequest, "minDevices must be >= 1")
		return
	}
	bundles := notify.Build(sn.res.Correlate, sn.ds.Inventory, sn.ds.Registry,
		sn.ds.Threat, notify.Config{MinDevices: minDevices, MinPackets: 1})
	writeJSON(w, http.StatusOK, map[string]any{"reports": bundles})
}

func (sn *Snapshot) handleMalware(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"hashes":   sn.res.Malware.Hashes,
		"domains":  sn.res.Malware.Domains,
		"families": sn.res.Malware.Families,
		"devices":  sn.res.Malware.MatchedDevices,
	})
}

func parseIntDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return v
}
