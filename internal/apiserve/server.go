// Package apiserve implements the authenticated sharing API the paper's
// Discussion commits to ("an authenticated API to share IoT-relevant
// malicious empirical data, IoT-centric attack signatures, and threat
// intelligence derived from passive measurements with the research
// community"). It exposes an analyzed dataset over HTTP/JSON behind bearer
// tokens: inferred devices, threat events, DoS episodes, port tables,
// derived attack signatures, campaigns, and malware indicators.
package apiserve

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"

	"iotscope/internal/analysis"
	"iotscope/internal/campaign"
	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
)

// Server serves one analyzed dataset.
type Server struct {
	ds     *core.Dataset
	res    *core.Results
	tokens map[string]bool
	mux    *http.ServeMux
}

// New builds a server over the dataset and its analysis results. At least
// one bearer token is required.
func New(ds *core.Dataset, res *core.Results, tokens []string) (*Server, error) {
	if ds == nil || res == nil {
		return nil, fmt.Errorf("apiserve: nil dataset or results")
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("apiserve: at least one API token is required")
	}
	s := &Server{
		ds:     ds,
		res:    res,
		tokens: make(map[string]bool, len(tokens)),
		mux:    http.NewServeMux(),
	}
	for _, t := range tokens {
		if t == "" {
			return nil, fmt.Errorf("apiserve: empty API token")
		}
		s.tokens[t] = true
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/summary", s.auth(s.handleSummary))
	s.mux.HandleFunc("GET /v1/devices", s.auth(s.handleDevices))
	s.mux.HandleFunc("GET /v1/devices/{id}", s.auth(s.handleDevice))
	s.mux.HandleFunc("GET /v1/threats/{ip}", s.auth(s.handleThreats))
	s.mux.HandleFunc("GET /v1/spikes", s.auth(s.handleSpikes))
	s.mux.HandleFunc("GET /v1/ports/tcp", s.auth(s.handleTCPPorts))
	s.mux.HandleFunc("GET /v1/ports/udp", s.auth(s.handleUDPPorts))
	s.mux.HandleFunc("GET /v1/signatures", s.auth(s.handleSignatures))
	s.mux.HandleFunc("GET /v1/campaigns", s.auth(s.handleCampaigns))
	s.mux.HandleFunc("GET /v1/malware", s.auth(s.handleMalware))
	s.mux.HandleFunc("GET /v1/reports", s.auth(s.handleReports))
}

// ServeHTTP implements http.Handler. A panicking handler is recovered so
// one poisoned request cannot take the sharing API down; the client gets a
// 500 and the stack goes to the server log. http.ErrAbortHandler keeps its
// conventional meaning and is re-raised for the http server to swallow.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		log.Printf("apiserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		writeError(w, http.StatusInternalServerError, "internal server error")
	}()
	s.mux.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// auth wraps a handler with bearer-token verification.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		const prefix = "Bearer "
		h := r.Header.Get("Authorization")
		if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
			writeError(w, http.StatusUnauthorized, "missing bearer token")
			return
		}
		token := h[len(prefix):]
		ok := false
		for t := range s.tokens {
			if len(t) == len(token) &&
				subtle.ConstantTimeCompare([]byte(t), []byte(token)) == 1 {
				ok = true
			}
		}
		if !ok {
			writeError(w, http.StatusUnauthorized, "invalid token")
			return
		}
		next(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	// Degraded, not dead: quarantined hours mean the served tables were
	// computed from an incomplete dataset, which monitors should see.
	status := "ok"
	if s.res.Correlate.Ingest.HoursQuarantined > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"hours":  s.ds.Scenario.Hours,
		"scale":  s.ds.Scenario.Scale,
		"ingest": s.res.Correlate.Ingest,
	})
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	bs := s.res.Analyzer.Backscatter()
	writeJSON(w, http.StatusOK, map[string]any{
		"summary":     s.res.Summary,
		"backscatter": bs,
		"statTests":   s.res.StatTests,
	})
}

// deviceDTO is the device wire shape.
type deviceDTO struct {
	ID          int      `json:"id"`
	IP          string   `json:"ip"`
	Category    string   `json:"category"`
	Type        string   `json:"type"`
	Country     string   `json:"country"`
	ISP         string   `json:"isp"`
	Services    []string `json:"services,omitempty"`
	FirstSeen   int      `json:"firstSeenHour"`
	Packets     uint64   `json:"packets"`
	Scanning    uint64   `json:"scanningPackets"`
	Backscatter uint64   `json:"backscatterPackets"`
	UDP         uint64   `json:"udpPackets"`
}

func (s *Server) deviceDTO(id int) deviceDTO {
	d := s.ds.Inventory.At(id)
	st := s.res.Correlate.Devices[id]
	dto := deviceDTO{
		ID: id, IP: d.IP.String(),
		Category: d.Category.String(), Type: d.Type.String(),
		Country: d.Country, ISP: s.ds.Registry.ISPs[d.ISP].Name,
		Services: d.Services,
	}
	if st != nil {
		dto.FirstSeen = st.FirstSeen
		dto.Packets = st.TotalPackets()
		dto.Scanning = st.Packets[classify.ScanTCP.Index()] + st.Packets[classify.ScanICMP.Index()]
		dto.Backscatter = st.Packets[classify.Backscatter.Index()]
		dto.UDP = st.Packets[classify.UDP.Index()]
	}
	return dto
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := q.Get("country")
	catFilter := q.Get("category")
	if catFilter != "" {
		if _, err := devicedb.ParseCategory(catFilter); err != nil {
			writeError(w, http.StatusBadRequest, "unknown category")
			return
		}
	}
	limit := parseIntDefault(q.Get("limit"), 100)
	offset := parseIntDefault(q.Get("offset"), 0)
	if limit < 1 || limit > 1000 || offset < 0 {
		writeError(w, http.StatusBadRequest, "limit must be 1..1000, offset >= 0")
		return
	}

	ids := make([]int, 0, len(s.res.Correlate.Devices))
	for id := range s.res.Correlate.Devices {
		d := s.ds.Inventory.At(id)
		if country != "" && d.Country != country {
			continue
		}
		if catFilter != "" && d.Category.String() != catFilter {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := len(ids)
	if offset > len(ids) {
		offset = len(ids)
	}
	ids = ids[offset:]
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]deviceDTO, len(ids))
	for i, id := range ids {
		out[i] = s.deviceDTO(id)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   total,
		"offset":  offset,
		"devices": out,
	})
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad device id")
		return
	}
	if _, ok := s.res.Correlate.Devices[id]; !ok {
		writeError(w, http.StatusNotFound, "device not inferred")
		return
	}
	dto := s.deviceDTO(id)
	threats := s.ds.Threat.CategoriesOf(s.ds.Inventory.At(id).IP)
	cats := make([]string, len(threats))
	for i, c := range threats {
		cats[i] = c.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"device":           dto,
		"threatCategories": cats,
	})
}

func (s *Server) handleThreats(w http.ResponseWriter, r *http.Request) {
	ip, err := netx.ParseAddr(r.PathValue("ip"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad IP")
		return
	}
	events := s.ds.Threat.Query(ip)
	type eventDTO struct {
		Category string `json:"category"`
		Source   string `json:"source"`
		Day      int    `json:"day"`
	}
	out := make([]eventDTO, len(events))
	for i, ev := range events {
		out[i] = eventDTO{Category: ev.Category.String(), Source: ev.Source, Day: ev.Day}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ip": ip.String(), "events": out})
}

func (s *Server) handleSpikes(w http.ResponseWriter, r *http.Request) {
	threshold := 8.0
	if v := r.URL.Query().Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 1 {
			writeError(w, http.StatusBadRequest, "threshold must be > 1")
			return
		}
		threshold = f
	}
	spikes := s.res.Analyzer.DetectDoSSpikes(threshold)
	type spikeDTO struct {
		StartHour int     `json:"startHour"`
		EndHour   int     `json:"endHour"`
		Packets   uint64  `json:"packets"`
		Victim    int     `json:"victimDevice"`
		Share     float64 `json:"victimShare"`
		Country   string  `json:"country"`
		Category  string  `json:"category"`
	}
	out := make([]spikeDTO, len(spikes))
	for i, sp := range spikes {
		d := s.ds.Inventory.At(sp.TopDevice)
		out[i] = spikeDTO{
			StartHour: sp.StartHour, EndHour: sp.EndHour, Packets: sp.Packets,
			Victim: sp.TopDevice, Share: sp.TopShare,
			Country: d.Country, Category: d.Category.String(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"threshold": threshold, "spikes": out})
}

func (s *Server) handleTCPPorts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"services": s.res.Analyzer.TopScanServices(analysis.DefaultScanServices()),
	})
}

func (s *Server) handleUDPPorts(w http.ResponseWriter, r *http.Request) {
	n := parseIntDefault(r.URL.Query().Get("n"), 10)
	if n < 1 || n > 1000 {
		writeError(w, http.StatusBadRequest, "n must be 1..1000")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ports": s.res.Analyzer.TopUDPPorts(n)})
}

// Signature is a derived IoT attack signature (the paper's contribution 2:
// "the analyzed traffic could be leveraged to design such signatures").
type Signature struct {
	Name        string   `json:"name"`
	Protocol    string   `json:"protocol"`
	Ports       []uint16 `json:"ports"`
	PacketShare float64  `json:"packetShare"`
	Devices     int      `json:"devices"`
	Realm       string   `json:"dominantRealm"`
}

func (s *Server) handleSignatures(w http.ResponseWriter, _ *http.Request) {
	var sigs []Signature
	for _, row := range s.res.Analyzer.TopScanServices(analysis.DefaultScanServices()) {
		if row.Packets == 0 {
			continue
		}
		realm := "cps"
		if row.ConsumerPct >= 50 {
			realm = "consumer"
		}
		sigs = append(sigs, Signature{
			Name: row.Service, Protocol: "tcp-syn", Ports: row.Ports,
			PacketShare: row.Pct, Devices: row.ConsumerDevices + row.CPSDevices,
			Realm: realm,
		})
	}
	for _, row := range s.res.Analyzer.TopUDPPorts(10) {
		sigs = append(sigs, Signature{
			Name:     fmt.Sprintf("udp-%d", row.Port),
			Protocol: "udp", Ports: []uint16{row.Port},
			PacketShare: row.Pct, Devices: row.Devices, Realm: "mixed",
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"signatures": sigs})
}

func (s *Server) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	campaigns, err := campaign.Detect(s.res.Correlate, campaign.DefaultConfig())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": campaigns})
}

// handleReports serves the per-ISP abuse notification bundles (the paper's
// "IoT-tailored notifications ... permitting rapid remediation").
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	minDevices := parseIntDefault(r.URL.Query().Get("minDevices"), 1)
	if minDevices < 1 {
		writeError(w, http.StatusBadRequest, "minDevices must be >= 1")
		return
	}
	bundles := notify.Build(s.res.Correlate, s.ds.Inventory, s.ds.Registry,
		s.ds.Threat, notify.Config{MinDevices: minDevices, MinPackets: 1})
	writeJSON(w, http.StatusOK, map[string]any{"reports": bundles})
}

func (s *Server) handleMalware(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"hashes":   s.res.Malware.Hashes,
		"domains":  s.res.Malware.Domains,
		"families": s.res.Malware.Families,
		"devices":  s.res.Malware.MatchedDevices,
	})
}

func parseIntDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return v
}
