// Package apiserve implements the authenticated sharing API the paper's
// Discussion commits to ("an authenticated API to share IoT-relevant
// malicious empirical data, IoT-centric attack signatures, and threat
// intelligence derived from passive measurements with the research
// community"). It exposes an analyzed dataset over HTTP/JSON behind bearer
// tokens: inferred devices, threat events, DoS episodes, port tables,
// derived attack signatures, campaigns, and malware indicators.
//
// The server is built for always-on operation: it serves from an
// atomically swapped immutable Snapshot (hot reload without restart or
// request tearing), recovers handler panics, reports lifecycle state on
// /healthz (ok / degraded / draining), and optionally applies admission
// control — a concurrency cap that sheds with 503 + Retry-After, a
// per-token rate limit that rejects with 429 + Retry-After, and a
// per-request context deadline (see internal/resilience).
//
// Every /v1/* read endpoint answers from the snapshot's materialized
// views (internal/matview): aggregates are precomputed once per swap, so
// request cost is O(answer), not O(dataset). Responses carry a strong
// ETag ("g<generation>-<digest>") with If-None-Match revalidation and
// Cache-Control; /v1/devices additionally supports opaque-cursor
// pagination (see docs/API.md).
package apiserve

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/matview"
	"iotscope/internal/netx"
	"iotscope/internal/pipeline"
	"iotscope/internal/resilience"
	"iotscope/internal/stream"
)

// Server serves analyzed datasets, one immutable snapshot at a time.
type Server struct {
	snap atomic.Pointer[Snapshot]
	gen  atomic.Uint64

	// tokens holds SHA-256 digests of the configured bearer tokens, so
	// verification compares fixed-size digests and neither timing nor
	// short-circuiting can leak token length or bytes.
	tokens  [][sha256.Size]byte
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in admission-control middleware

	draining   atomic.Bool
	reloadFail atomic.Pointer[reloadFailure]
	// loadRep is the latest snapshot load's per-stage pipeline report
	// (successful or not), served read-only on /v1/pipeline.
	loadRep atomic.Pointer[pipeline.Report]
	// prov is the provenance of the currently served snapshot's analyzed
	// state (result store vs raw analysis); nil when the caller never
	// reported one.
	prov atomic.Pointer[core.Provenance]

	limiter *resilience.Limiter
	rate    *resilience.RateLimiter
	timeout time.Duration
	clock   func() time.Time

	// Serving counters for /debug/vars: total requests through ServeHTTP
	// and conditional requests answered 304 from the client's cache.
	requests    atomic.Uint64
	notModified atomic.Uint64

	// alerts, when wired via WithAlerts, serves the streaming collector's
	// low-latency alert feed on /v1/alerts (long-poll) and
	// /v1/alerts/stream (SSE).
	alerts *stream.Hub
}

// Option customizes a Server at construction.
type Option func(*Server) error

// WithConcurrencyLimit caps in-flight requests at max; excess requests
// are shed with 503 and a Retry-After of retryAfter. /healthz is exempt.
func WithConcurrencyLimit(max int, retryAfter time.Duration) Option {
	return func(s *Server) error {
		l, err := resilience.NewLimiter(max, retryAfter)
		if err != nil {
			return err
		}
		s.limiter = l
		return nil
	}
}

// WithRateLimit grants each API token rate requests/second with the given
// burst; excess requests are rejected with 429 and Retry-After.
func WithRateLimit(rate float64, burst int) Option {
	return func(s *Server) error {
		rl, err := resilience.NewRateLimiter(rate, burst)
		if err != nil {
			return err
		}
		s.rate = rl
		return nil
	}
}

// WithAlerts mounts a streaming collector's alert hub: GET /v1/alerts
// answers with the journaled backlog after ?since=N and long-polls with
// ?wait=DURATION; GET /v1/alerts/stream is a Server-Sent Events feed
// whose event IDs are alert IDs, so Last-Event-ID reconnects resume
// exactly. Both sit behind the same bearer-token auth as the rest of the
// API. Note that WithRequestTimeout applies to these too — a cut stream
// or long-poll is the client's cue to reconnect; no alert is lost, the
// journal replays the gap.
func WithAlerts(hub *stream.Hub) Option {
	return func(s *Server) error {
		if hub == nil {
			return fmt.Errorf("apiserve: nil alert hub")
		}
		s.alerts = hub
		return nil
	}
}

// WithRequestTimeout propagates a per-request context deadline of d to
// every handler.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) error {
		if d <= 0 {
			return fmt.Errorf("apiserve: request timeout %v must be positive", d)
		}
		s.timeout = d
		return nil
	}
}

// New builds a server over the dataset and its analysis results. At least
// one bearer token is required. Options wire admission control; without
// them the server accepts every authenticated request.
func New(ds *core.Dataset, res *core.Results, tokens []string, opts ...Option) (*Server, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("apiserve: at least one API token is required")
	}
	s := &Server{
		mux:   http.NewServeMux(),
		clock: time.Now,
	}
	for _, t := range tokens {
		if t == "" {
			return nil, fmt.Errorf("apiserve: empty API token")
		}
		s.tokens = append(s.tokens, sha256.Sum256([]byte(t)))
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if _, err := s.Swap(ds, res); err != nil {
		return nil, err
	}
	s.routes()

	var h http.Handler = s.mux
	if s.timeout > 0 {
		h = resilience.WithTimeout(s.timeout, h)
	}
	if s.limiter != nil {
		h = s.limiter.Middleware(h, "/healthz")
	}
	s.handler = h
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/summary", s.auth(s.view((*Snapshot).handleSummary)))
	s.mux.HandleFunc("GET /v1/devices", s.auth(s.view((*Snapshot).handleDevices)))
	s.mux.HandleFunc("GET /v1/devices/{id}", s.auth(s.view((*Snapshot).handleDevice)))
	s.mux.HandleFunc("GET /v1/threats/{ip}", s.auth(s.view((*Snapshot).handleThreats)))
	s.mux.HandleFunc("GET /v1/spikes", s.auth(s.view((*Snapshot).handleSpikes)))
	s.mux.HandleFunc("GET /v1/ports/tcp", s.auth(s.view((*Snapshot).handleTCPPorts)))
	s.mux.HandleFunc("GET /v1/ports/udp", s.auth(s.view((*Snapshot).handleUDPPorts)))
	s.mux.HandleFunc("GET /v1/signatures", s.auth(s.view((*Snapshot).handleSignatures)))
	s.mux.HandleFunc("GET /v1/campaigns", s.auth(s.view((*Snapshot).handleCampaigns)))
	s.mux.HandleFunc("GET /v1/malware", s.auth(s.view((*Snapshot).handleMalware)))
	s.mux.HandleFunc("GET /v1/reports", s.auth(s.view((*Snapshot).handleReports)))
	s.mux.HandleFunc("GET /v1/pipeline", s.auth(s.handlePipeline))
	if s.alerts != nil {
		s.mux.HandleFunc("GET /v1/alerts", s.auth(s.alerts.ServeList))
		s.mux.HandleFunc("GET /v1/alerts/stream", s.auth(s.alerts.ServeStream))
	}
}

// SetLoadReport publishes the per-stage report of the latest snapshot load
// attempt (boot or hot reload, successful or rejected) for /v1/pipeline.
// The report must not be mutated after it is handed over.
func (s *Server) SetLoadReport(rep *pipeline.Report) {
	if rep != nil {
		s.loadRep.Store(rep)
	}
}

// SetProvenance publishes where the served snapshot's analyzed state came
// from (result store artifact vs raw analysis). /healthz reports it inside
// the snapshot block, and a recorded store fallback degrades health: the
// server is up but not serving from the artifact it was told to.
func (s *Server) SetProvenance(p core.Provenance) {
	s.prov.Store(&p)
}

// handlePipeline serves the latest load's pipeline report — how long each
// stage took and which one stopped a rejected reload.
func (s *Server) handlePipeline(w http.ResponseWriter, _ *http.Request) {
	rep := s.loadRep.Load()
	if rep == nil {
		writeError(w, http.StatusNotFound, "no pipeline report recorded")
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// view binds a snapshot-scoped read handler to whatever snapshot is
// current when the request arrives. The handler keeps that snapshot —
// dataset, results, and materialized views — for its whole lifetime, so a
// concurrent Swap can never tear or mix generations within a response.
// The wrapper owns the caching contract: it stamps the snapshot's strong
// ETag and Cache-Control on every response (errors included — they are
// derived from the same snapshot state) and answers a matching
// If-None-Match with 304 before any handler work runs.
func (s *Server) view(h func(*Snapshot, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sn := s.snap.Load()
		hdr := w.Header()
		hdr.Set("ETag", sn.etag)
		hdr.Set("Cache-Control", "private, must-revalidate")
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, sn.etag) {
			s.notModified.Add(1)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h(sn, w, r)
	}
}

// etagMatch implements If-None-Match for a strong validator: "*" matches
// anything, otherwise the comma-separated candidate list is compared
// exactly (a weak W/ prefix is tolerated and stripped — the weak form of
// a strong tag still identifies the same snapshot).
func etagMatch(inm, etag string) bool {
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// ServeHTTP implements http.Handler. A panicking handler is recovered so
// one poisoned request cannot take the sharing API down; the client gets a
// 500 and the stack goes to the server log. http.ErrAbortHandler keeps its
// conventional meaning and is re-raised for the http server to swallow.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		log.Printf("apiserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
		writeError(w, http.StatusInternalServerError, "internal server error")
	}()
	s.requests.Add(1)
	s.handler.ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// auth wraps a handler with bearer-token verification and, when
// configured, the per-token rate limit. Tokens are compared as SHA-256
// digests: every candidate is hashed and compared constant-time against
// every configured digest, so neither a length mismatch nor an early
// match can short-circuit the loop.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		const prefix = "Bearer "
		h := r.Header.Get("Authorization")
		if len(h) <= len(prefix) || h[:len(prefix)] != prefix {
			writeError(w, http.StatusUnauthorized, "missing bearer token")
			return
		}
		sum := sha256.Sum256([]byte(h[len(prefix):]))
		ok := false
		for _, d := range s.tokens {
			if subtle.ConstantTimeCompare(d[:], sum[:]) == 1 {
				ok = true
			}
		}
		if !ok {
			writeError(w, http.StatusUnauthorized, "invalid token")
			return
		}
		if s.rate != nil {
			key := fmt.Sprintf("%x", sum[:8])
			if allowed, retry := s.rate.Allow(key); !allowed {
				resilience.ShedResponse(w, http.StatusTooManyRequests, retry,
					"rate limit exceeded for token")
				return
			}
		}
		next(w, r)
	}
}

// bufPool recycles encoding buffers across requests so the steady-state
// read path allocates the response value but not the serialization
// scratch. Buffers that grew past a page-cache-friendly ceiling are
// dropped rather than pinned forever.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

// writeJSON encodes v through a pooled buffer and writes it with a
// Content-Length. The wire bytes are exactly what the former
// direct-to-ResponseWriter encoder produced: two-space indent plus the
// encoder's trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		bufPool.Put(buf)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //nolint:errcheck // client went away
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// writePooledBody has fill assemble the body into a pooled buffer (the
// matview page builders append pre-encoded rows), then writes it with a
// Content-Length — the no-encoder path for parameterized endpoints.
func writePooledBody(w http.ResponseWriter, status int, fill func(*bytes.Buffer)) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	fill(buf)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //nolint:errcheck // client went away
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// writeBody writes a pre-encoded JSON body (a matview static table) —
// the zero-encoding fast path for parameterless endpoints.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealth reports lifecycle and data health. Status is "draining"
// (with HTTP 503, so load balancers pull the instance) during shutdown,
// "degraded" when the served snapshot was computed from quarantined hours
// or the last reload attempt failed, else "ok". The snapshot block carries
// the generation and load time so operators can verify a reload landed.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	snap := s.snap.Load()
	status := "ok"
	code := http.StatusOK
	if snap.res.Correlate.Ingest.HoursQuarantined > 0 {
		status = "degraded"
	}
	snapshot := map[string]any{
		"generation": snap.Generation,
		"loadedAt":   snap.LoadedAt.UTC().Format(time.RFC3339),
	}
	if p := s.prov.Load(); p != nil {
		snapshot["source"] = p.Source
		if p.StorePath != "" {
			snapshot["store"] = p.StorePath
		}
		if p.CodecVersion != 0 {
			snapshot["codecVersion"] = p.CodecVersion
		}
		if p.Fallback != "" {
			status = "degraded"
			snapshot["storeFallback"] = p.Fallback
		}
	}
	body := map[string]any{
		"hours":    snap.ds.Scenario.Hours,
		"scale":    snap.ds.Scenario.Scale,
		"ingest":   snap.res.Correlate.Ingest,
		"snapshot": snapshot,
	}
	if f := s.reloadFail.Load(); f != nil {
		status = "degraded"
		body["lastReloadError"] = map[string]any{
			"error": f.msg,
			"at":    f.at.UTC().Format(time.RFC3339),
		}
	}
	if s.limiter != nil {
		body["admission"] = s.limiter.Stats()
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	body["status"] = status
	writeJSON(w, code, body)
}

func (sn *Snapshot) handleSummary(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, sn.views.SummaryBody())
}

// handleDevices pages through the materialized device index. Two
// pagination modes share the filter validation: classic offset paging
// (the original wire contract, byte-identical), and opaque-cursor paging
// (?cursor=start, then follow nextCursor) whose resume cost is a binary
// search instead of an O(offset) skip.
func (sn *Snapshot) handleDevices(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := q.Get("country")
	catFilter := q.Get("category")
	if catFilter != "" {
		if _, err := devicedb.ParseCategory(catFilter); err != nil {
			writeError(w, http.StatusBadRequest, "unknown category")
			return
		}
	}
	limit, ok := intParam(w, q.Get("limit"), 100, 1, 1000, "limit must be 1..1000")
	if !ok {
		return
	}

	if cursor := q.Get("cursor"); cursor != "" {
		if q.Get("offset") != "" {
			writeError(w, http.StatusBadRequest, "cursor and offset are mutually exclusive")
			return
		}
		afterID := -1
		if cursor != "start" {
			cCountry, cCat, cAfter, err := matview.DecodeCursor(cursor)
			if err != nil || cCountry != country || cCat != catFilter {
				writeError(w, http.StatusBadRequest, "bad cursor")
				return
			}
			afterID = cAfter
		}
		writePooledBody(w, http.StatusOK, func(buf *bytes.Buffer) {
			sn.views.AppendDevicesAfterBody(buf, country, catFilter, afterID, limit)
		})
		return
	}

	offset, ok := intParam(w, q.Get("offset"), 0, 0, maxInt, "offset must be >= 0")
	if !ok {
		return
	}
	writePooledBody(w, http.StatusOK, func(buf *bytes.Buffer) {
		sn.views.AppendDeviceSliceBody(buf, country, catFilter, offset, limit)
	})
}

func (sn *Snapshot) handleDevice(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad device id")
		return
	}
	dto, ok := sn.views.Device(id)
	if !ok {
		writeError(w, http.StatusNotFound, "device not inferred")
		return
	}
	cats, _ := sn.views.ThreatCategories(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"device":           dto,
		"threatCategories": cats,
	})
}

func (sn *Snapshot) handleThreats(w http.ResponseWriter, r *http.Request) {
	ip, err := netx.ParseAddr(r.PathValue("ip"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad IP")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ip":     ip.String(),
		"events": sn.views.ThreatEvents(ip),
	})
}

func (sn *Snapshot) handleSpikes(w http.ResponseWriter, r *http.Request) {
	threshold, ok := floatParamGreaterThan(w, r.URL.Query().Get("threshold"), 8.0, 1,
		"threshold must be > 1")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold": threshold,
		"spikes":    sn.views.DoSSpikes(threshold),
	})
}

func (sn *Snapshot) handleTCPPorts(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, sn.views.TCPPortsBody())
}

func (sn *Snapshot) handleUDPPorts(w http.ResponseWriter, r *http.Request) {
	n, ok := intParam(w, r.URL.Query().Get("n"), 10, 1, 1000, "n must be 1..1000")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ports": sn.views.TopUDP(n)})
}

// Signature is a derived IoT attack signature (the paper's contribution 2:
// "the analyzed traffic could be leveraged to design such signatures").
// The table itself is materialized per snapshot; the type lives with it.
type Signature = matview.Signature

func (sn *Snapshot) handleSignatures(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, sn.views.SignaturesBody())
}

func (sn *Snapshot) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, sn.views.CampaignsBody())
}

// handleReports serves the per-ISP abuse notification bundles (the paper's
// "IoT-tailored notifications ... permitting rapid remediation").
func (sn *Snapshot) handleReports(w http.ResponseWriter, r *http.Request) {
	minDevices, ok := intParam(w, r.URL.Query().Get("minDevices"), 1, 1, maxInt,
		"minDevices must be >= 1")
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reports": sn.views.Reports(minDevices)})
}

func (sn *Snapshot) handleMalware(w http.ResponseWriter, _ *http.Request) {
	writeBody(w, http.StatusOK, sn.views.MalwareBody())
}
