package apiserve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// The serve benchmarks drive full requests (auth, admission, handler,
// encoding) through ServeHTTP against the shared fixture. The *Legacy
// variants run the same requests against the pre-materialization handlers
// from legacy_test.go — the before/after pair the BENCH artifact and
// tools/benchdiff gate on.

func benchPaths(b *testing.B) (summary, devicesFilter string) {
	b.Helper()
	s := loadServer(b)
	page, _, _ := s.Current().Views().DevicesAfter("", "", -1, 1)
	if len(page) == 0 {
		b.Fatal("fixture inferred no devices")
	}
	return "/v1/summary", fmt.Sprintf("/v1/devices?country=%s&limit=100", page[0].Country)
}

func benchServe(b *testing.B, h http.Handler, path string, auth bool) {
	b.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if auth {
		req.Header.Set("Authorization", "Bearer "+testToken)
	}
	// One warm-up request to validate status before timing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := httptest.NewRequest(http.MethodGet, path, nil)
		if auth {
			r.Header.Set("Authorization", "Bearer "+testToken)
		}
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}

func BenchmarkServeSummary(b *testing.B) {
	summary, _ := benchPaths(b)
	benchServe(b, loadServer(b), summary, true)
}

func BenchmarkServeDevicesFilter(b *testing.B) {
	_, devices := benchPaths(b)
	benchServe(b, loadServer(b), devices, true)
}

func BenchmarkServeSummaryLegacy(b *testing.B) {
	summary, _ := benchPaths(b)
	benchServe(b, legacyMux(srvDS, srvRes), summary, false)
}

func BenchmarkServeDevicesFilterLegacy(b *testing.B) {
	_, devices := benchPaths(b)
	benchServe(b, legacyMux(srvDS, srvRes), devices, false)
}

// BenchmarkServeHTTPLoad is the end-to-end load benchmark: concurrent
// clients over real TCP against an httptest server wrapping the full
// middleware stack, reporting request throughput and p50/p99 latency.
func BenchmarkServeHTTPLoad(b *testing.B) {
	s := loadServer(b)
	_, devices := benchPaths(b)
	ts := httptest.NewServer(s)
	defer ts.Close()
	paths := []string{"/v1/summary", devices}

	var mu sync.Mutex
	var lat []time.Duration

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := ts.Client()
		local := make([]time.Duration, 0, 1024)
		for i := 0; pb.Next(); i++ {
			req, err := http.NewRequest(http.MethodGet, ts.URL+paths[i%len(paths)], nil)
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Authorization", "Bearer "+testToken)
			start := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				b.Fatalf("status %d", resp.StatusCode)
			}
			// Drain so the connection is reused instead of redialed.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			local = append(local, time.Since(start))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Microseconds()), "p50-µs")
		b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-µs")
	}
}
