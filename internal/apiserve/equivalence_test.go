package apiserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"

	"iotscope/internal/core"
)

// The equivalence suite: every /v1/* read endpoint must produce
// byte-identical JSON bodies from the materialized views and from the
// legacy per-request handlers (legacy_test.go), across a grid of
// parameters and under both the strict and lenient analysis configs.
// Caching headers (ETag, Cache-Control) are new and excluded; bodies are
// compared raw.
func TestViewLegacyEquivalence(t *testing.T) {
	dir, err := os.MkdirTemp("", "apiserve-eq-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := core.DefaultConfig(0.004, 707)
	cfg.Hours = 48
	ds, err := core.Generate(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name    string
		lenient bool
	}{{"strict", false}, {"lenient", true}} {
		t.Run(mode.name, func(t *testing.T) {
			mcfg := cfg
			mcfg.Lenient = mode.lenient
			res, err := ds.Analyze(mcfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(ds, res, []string{testToken})
			if err != nil {
				t.Fatal(err)
			}
			legacy := legacyMux(ds, res)

			for _, path := range equivalenceGrid(t, ds, res) {
				t.Run(path, func(t *testing.T) {
					newCode, newBody := rawGet(t, s, path)
					legCode, legBody := rawGetMux(t, legacy, path)
					if newCode != legCode {
						t.Fatalf("status diverged: views %d, legacy %d", newCode, legCode)
					}
					if newCode == http.StatusOK && newBody != legBody {
						t.Fatalf("body diverged (%d bytes vs %d):\nviews:  %s\nlegacy: %s",
							len(newBody), len(legBody), clip(newBody), clip(legBody))
					}
				})
			}
		})
	}
}

// equivalenceGrid builds the request grid from the actual dataset so the
// filter/detail paths exercise real countries, categories, and device IDs
// (plus misses and edge values).
func equivalenceGrid(t *testing.T, ds *core.Dataset, res *core.Results) []string {
	t.Helper()
	if len(res.Correlate.Devices) == 0 {
		t.Fatal("fixture inferred no devices; grid would be vacuous")
	}

	ids := make([]int, 0, len(res.Correlate.Devices))
	countrySet := map[string]bool{}
	catSet := map[string]bool{}
	for id := range res.Correlate.Devices {
		ids = append(ids, id)
		d := ds.Inventory.At(id)
		countrySet[d.Country] = true
		catSet[d.Category.String()] = true
	}
	sort.Ints(ids)
	countries := sortedKeys(countrySet)
	cats := sortedKeys(catSet)

	// A device the inventory knows but inference did not flag (404 path).
	missing := -1
	inferred := res.Correlate.Devices
	for id := 0; id < ds.Inventory.Len(); id++ {
		if _, ok := inferred[id]; !ok {
			missing = id
			break
		}
	}

	grid := []string{
		"/v1/summary",
		"/v1/ports/tcp",
		"/v1/signatures",
		"/v1/campaigns",
		"/v1/malware",
		"/v1/reports",
		"/v1/reports?minDevices=2",
		"/v1/reports?minDevices=3",
		"/v1/reports?minDevices=1000000",
		"/v1/reports?minDevices=0",   // 400 both sides
		"/v1/reports?minDevices=abc", // 400 both sides
		"/v1/ports/udp",
		"/v1/ports/udp?n=1",
		"/v1/ports/udp?n=5",
		"/v1/ports/udp?n=1000",
		"/v1/ports/udp?n=0",    // 400
		"/v1/ports/udp?n=1001", // 400
		"/v1/spikes",
		"/v1/spikes?threshold=1.5",
		"/v1/spikes?threshold=2.5",
		"/v1/spikes?threshold=100",
		"/v1/spikes?threshold=0.5", // 400
		"/v1/devices",
		"/v1/devices?limit=1",
		"/v1/devices?limit=1000",
		"/v1/devices?limit=7&offset=3",
		"/v1/devices?offset=1000000",  // clamped echo
		"/v1/devices?limit=0",         // 400
		"/v1/devices?limit=1001",      // 400
		"/v1/devices?offset=-1",       // 400
		"/v1/devices?limit=abc",       // 400
		"/v1/devices?country=ZZ",      // empty result, total 0
		"/v1/devices?category=router", // 400: not a category in this model
		"/v1/devices/999999999",       // 404
		"/v1/devices/abc",             // 400
		"/v1/threats/not-an-ip",       // 400
		"/v1/threats/203.0.113.7",     // almost surely no events
	}
	for _, c := range countries {
		grid = append(grid, "/v1/devices?country="+c)
		grid = append(grid, "/v1/devices?country="+c+"&limit=3&offset=2")
		for _, cat := range cats {
			grid = append(grid, "/v1/devices?country="+c+"&category="+cat)
		}
	}
	for _, cat := range cats {
		grid = append(grid, "/v1/devices?category="+cat)
	}
	// Device detail: a spread of real IDs plus the not-inferred one.
	for i := 0; i < len(ids); i += max(1, len(ids)/10) {
		grid = append(grid, fmt.Sprintf("/v1/devices/%d", ids[i]))
		// Threat lookups against real device IPs hit populated intel paths.
		grid = append(grid, "/v1/threats/"+ds.Inventory.At(ids[i]).IP.String())
	}
	if missing >= 0 {
		grid = append(grid, fmt.Sprintf("/v1/devices/%d", missing))
	}
	return grid
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "…"
	}
	return s
}

// rawGet performs an authorized GET against the full server and returns
// the raw body.
func rawGet(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// rawGetMux performs a GET against the legacy oracle mux (no auth layer).
func rawGetMux(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// Cursor pagination is new (the legacy handlers never had it), so it is
// pinned against the offset path instead: walking the cursor chain must
// visit exactly the devices offset paging yields, in order, with a stable
// total.
func TestCursorWalkMatchesOffsetPaging(t *testing.T) {
	s := loadServer(t)

	for _, filter := range []string{"", "&country=ZZ"} {
		want := collectOffsetDevices(t, s, filter)

		var got []string
		cursor := "start"
		pages := 0
		for cursor != "" {
			code, body := rawGetJSON(t, s, "/v1/devices?limit=7&cursor="+cursor+filter)
			if code != http.StatusOK {
				t.Fatalf("cursor page %d: status %d", pages, code)
			}
			for _, d := range body["devices"].([]any) {
				got = append(got, d.(map[string]any)["ip"].(string))
			}
			if int(body["total"].(float64)) != len(want) {
				t.Fatalf("cursor page %d total %v, want %d", pages, body["total"], len(want))
			}
			cursor, _ = body["nextCursor"].(string)
			pages++
			if pages > 10000 {
				t.Fatal("cursor chain does not terminate")
			}
		}
		if len(got) != len(want) {
			t.Fatalf("cursor walk (filter %q) visited %d devices, offset paging %d", filter, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("device %d diverged: cursor %s, offset %s", i, got[i], want[i])
			}
		}
	}
}

func collectOffsetDevices(t *testing.T, s *Server, filter string) []string {
	t.Helper()
	var out []string
	for offset := 0; ; {
		code, body := rawGetJSON(t, s, fmt.Sprintf("/v1/devices?limit=7&offset=%d%s", offset, filter))
		if code != http.StatusOK {
			t.Fatalf("offset %d: status %d", offset, code)
		}
		devs := body["devices"].([]any)
		if len(devs) == 0 {
			return out
		}
		for _, d := range devs {
			out = append(out, d.(map[string]any)["ip"].(string))
		}
		offset += len(devs)
	}
}

func rawGetJSON(t *testing.T, s *Server, path string) (int, map[string]any) {
	t.Helper()
	return get(t, s, path, testToken)
}
