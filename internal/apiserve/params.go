package apiserve

import (
	"math"
	"net/http"
	"strconv"
)

const maxInt = math.MaxInt

// Query-parameter validation policy (the one validated-params helper):
// every bounded parameter on a read endpoint is REJECTED with 400 and a
// parameter-specific message when it is absent-from-range or unparsable —
// never silently capped. The single documented exception is the alerts
// long-poll ?wait, which is a latency-shaping knob, not a result bound:
// it is clamped to the server's maximum (see stream.ServeList and
// docs/API.md §parameters).

// intParam parses raw as an integer parameter: empty means def, anything
// unparsable or outside [lo, hi] writes a 400 with msg and reports
// ok=false.
func intParam(w http.ResponseWriter, raw string, def, lo, hi int, msg string) (int, bool) {
	v := def
	if raw != "" {
		parsed, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, msg)
			return 0, false
		}
		v = parsed
	}
	if v < lo || v > hi {
		writeError(w, http.StatusBadRequest, msg)
		return 0, false
	}
	return v, true
}

// floatParamGreaterThan parses raw as a float parameter: empty means def,
// anything unparsable or <= floor writes a 400 with msg and reports
// ok=false.
func floatParamGreaterThan(w http.ResponseWriter, raw string, def, floor float64, msg string) (float64, bool) {
	v := def
	if raw != "" {
		parsed, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, msg)
			return 0, false
		}
		v = parsed
	}
	// !(v > floor) rather than v <= floor so NaN is rejected too: the
	// pre-refactor handler let NaN through and then failed mid-encode.
	if !(v > floor) {
		writeError(w, http.StatusBadRequest, msg)
		return 0, false
	}
	return v, true
}
