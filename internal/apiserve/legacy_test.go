package apiserve

// This file is the pre-materialization oracle: verbatim copies of the
// /v1/* read handlers as they existed before internal/matview, walking
// the analyzed Result per request. The equivalence suite replays the
// same requests against these and against the view-backed server and
// requires byte-identical bodies. Do not "fix" or modernize this code —
// its value is that it does NOT share logic with the serving path.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"iotscope/internal/analysis"
	"iotscope/internal/campaign"
	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
)

// legacySnap mirrors the old Snapshot's data access.
type legacySnap struct {
	ds  *core.Dataset
	res *core.Results
}

// legacyMux routes exactly the read endpoints the refactor touched.
func legacyMux(ds *core.Dataset, res *core.Results) *http.ServeMux {
	sn := &legacySnap{ds: ds, res: res}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/summary", sn.handleSummary)
	mux.HandleFunc("GET /v1/devices", sn.handleDevices)
	mux.HandleFunc("GET /v1/devices/{id}", sn.handleDevice)
	mux.HandleFunc("GET /v1/threats/{ip}", sn.handleThreats)
	mux.HandleFunc("GET /v1/spikes", sn.handleSpikes)
	mux.HandleFunc("GET /v1/ports/tcp", sn.handleTCPPorts)
	mux.HandleFunc("GET /v1/ports/udp", sn.handleUDPPorts)
	mux.HandleFunc("GET /v1/signatures", sn.handleSignatures)
	mux.HandleFunc("GET /v1/campaigns", sn.handleCampaigns)
	mux.HandleFunc("GET /v1/malware", sn.handleMalware)
	mux.HandleFunc("GET /v1/reports", sn.handleReports)
	return mux
}

func legacyWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}

func legacyWriteError(w http.ResponseWriter, status int, msg string) {
	legacyWriteJSON(w, status, map[string]string{"error": msg})
}

func legacyParseIntDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return v
}

func (sn *legacySnap) handleSummary(w http.ResponseWriter, _ *http.Request) {
	bs := sn.res.Analyzer.Backscatter()
	legacyWriteJSON(w, http.StatusOK, map[string]any{
		"summary":     sn.res.Summary,
		"backscatter": bs,
		"statTests":   sn.res.StatTests,
	})
}

type legacyDeviceDTO struct {
	ID          int      `json:"id"`
	IP          string   `json:"ip"`
	Category    string   `json:"category"`
	Type        string   `json:"type"`
	Country     string   `json:"country"`
	ISP         string   `json:"isp"`
	Services    []string `json:"services,omitempty"`
	FirstSeen   int      `json:"firstSeenHour"`
	Packets     uint64   `json:"packets"`
	Scanning    uint64   `json:"scanningPackets"`
	Backscatter uint64   `json:"backscatterPackets"`
	UDP         uint64   `json:"udpPackets"`
}

func (sn *legacySnap) deviceDTO(id int) legacyDeviceDTO {
	d := sn.ds.Inventory.At(id)
	st := sn.res.Correlate.Devices[id]
	dto := legacyDeviceDTO{
		ID: id, IP: d.IP.String(),
		Category: d.Category.String(), Type: d.Type.String(),
		Country: d.Country, ISP: sn.ds.Registry.ISPs[d.ISP].Name,
		Services: d.Services,
	}
	if st != nil {
		dto.FirstSeen = st.FirstSeen
		dto.Packets = st.TotalPackets()
		dto.Scanning = st.Packets[classify.ScanTCP.Index()] + st.Packets[classify.ScanICMP.Index()]
		dto.Backscatter = st.Packets[classify.Backscatter.Index()]
		dto.UDP = st.Packets[classify.UDP.Index()]
	}
	return dto
}

func (sn *legacySnap) handleDevices(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	country := q.Get("country")
	catFilter := q.Get("category")
	if catFilter != "" {
		if _, err := devicedb.ParseCategory(catFilter); err != nil {
			legacyWriteError(w, http.StatusBadRequest, "unknown category")
			return
		}
	}
	limit := legacyParseIntDefault(q.Get("limit"), 100)
	offset := legacyParseIntDefault(q.Get("offset"), 0)
	if limit < 1 || limit > 1000 || offset < 0 {
		legacyWriteError(w, http.StatusBadRequest, "limit must be 1..1000, offset >= 0")
		return
	}

	ids := make([]int, 0, len(sn.res.Correlate.Devices))
	for id := range sn.res.Correlate.Devices {
		d := sn.ds.Inventory.At(id)
		if country != "" && d.Country != country {
			continue
		}
		if catFilter != "" && d.Category.String() != catFilter {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := len(ids)
	if offset > len(ids) {
		offset = len(ids)
	}
	ids = ids[offset:]
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]legacyDeviceDTO, len(ids))
	for i, id := range ids {
		out[i] = sn.deviceDTO(id)
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{
		"total":   total,
		"offset":  offset,
		"devices": out,
	})
}

func (sn *legacySnap) handleDevice(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		legacyWriteError(w, http.StatusBadRequest, "bad device id")
		return
	}
	if _, ok := sn.res.Correlate.Devices[id]; !ok {
		legacyWriteError(w, http.StatusNotFound, "device not inferred")
		return
	}
	dto := sn.deviceDTO(id)
	threats := sn.ds.Threat.CategoriesOf(sn.ds.Inventory.At(id).IP)
	cats := make([]string, len(threats))
	for i, c := range threats {
		cats[i] = c.String()
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{
		"device":           dto,
		"threatCategories": cats,
	})
}

func (sn *legacySnap) handleThreats(w http.ResponseWriter, r *http.Request) {
	ip, err := netx.ParseAddr(r.PathValue("ip"))
	if err != nil {
		legacyWriteError(w, http.StatusBadRequest, "bad IP")
		return
	}
	events := sn.ds.Threat.Query(ip)
	type eventDTO struct {
		Category string `json:"category"`
		Source   string `json:"source"`
		Day      int    `json:"day"`
	}
	out := make([]eventDTO, len(events))
	for i, ev := range events {
		out[i] = eventDTO{Category: ev.Category.String(), Source: ev.Source, Day: ev.Day}
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{"ip": ip.String(), "events": out})
}

func (sn *legacySnap) handleSpikes(w http.ResponseWriter, r *http.Request) {
	threshold := 8.0
	if v := r.URL.Query().Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 1 {
			legacyWriteError(w, http.StatusBadRequest, "threshold must be > 1")
			return
		}
		threshold = f
	}
	spikes := sn.res.Analyzer.DetectDoSSpikes(threshold)
	type spikeDTO struct {
		StartHour int     `json:"startHour"`
		EndHour   int     `json:"endHour"`
		Packets   uint64  `json:"packets"`
		Victim    int     `json:"victimDevice"`
		Share     float64 `json:"victimShare"`
		Country   string  `json:"country"`
		Category  string  `json:"category"`
	}
	out := make([]spikeDTO, len(spikes))
	for i, sp := range spikes {
		d := sn.ds.Inventory.At(sp.TopDevice)
		out[i] = spikeDTO{
			StartHour: sp.StartHour, EndHour: sp.EndHour, Packets: sp.Packets,
			Victim: sp.TopDevice, Share: sp.TopShare,
			Country: d.Country, Category: d.Category.String(),
		}
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{"threshold": threshold, "spikes": out})
}

func (sn *legacySnap) handleTCPPorts(w http.ResponseWriter, _ *http.Request) {
	legacyWriteJSON(w, http.StatusOK, map[string]any{
		"services": sn.res.Analyzer.TopScanServices(analysis.DefaultScanServices()),
	})
}

func (sn *legacySnap) handleUDPPorts(w http.ResponseWriter, r *http.Request) {
	n := legacyParseIntDefault(r.URL.Query().Get("n"), 10)
	if n < 1 || n > 1000 {
		legacyWriteError(w, http.StatusBadRequest, "n must be 1..1000")
		return
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{"ports": sn.res.Analyzer.TopUDPPorts(n)})
}

func (sn *legacySnap) handleSignatures(w http.ResponseWriter, _ *http.Request) {
	var sigs []Signature
	for _, row := range sn.res.Analyzer.TopScanServices(analysis.DefaultScanServices()) {
		if row.Packets == 0 {
			continue
		}
		realm := "cps"
		if row.ConsumerPct >= 50 {
			realm = "consumer"
		}
		sigs = append(sigs, Signature{
			Name: row.Service, Protocol: "tcp-syn", Ports: row.Ports,
			PacketShare: row.Pct, Devices: row.ConsumerDevices + row.CPSDevices,
			Realm: realm,
		})
	}
	for _, row := range sn.res.Analyzer.TopUDPPorts(10) {
		sigs = append(sigs, Signature{
			Name:     fmt.Sprintf("udp-%d", row.Port),
			Protocol: "udp", Ports: []uint16{row.Port},
			PacketShare: row.Pct, Devices: row.Devices, Realm: "mixed",
		})
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{"signatures": sigs})
}

func (sn *legacySnap) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	campaigns, err := campaign.Detect(sn.res.Correlate, campaign.DefaultConfig())
	if err != nil {
		legacyWriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	legacyWriteJSON(w, http.StatusOK, map[string]any{"campaigns": campaigns})
}

func (sn *legacySnap) handleReports(w http.ResponseWriter, r *http.Request) {
	minDevices := legacyParseIntDefault(r.URL.Query().Get("minDevices"), 1)
	if minDevices < 1 {
		legacyWriteError(w, http.StatusBadRequest, "minDevices must be >= 1")
		return
	}
	bundles := notify.Build(sn.res.Correlate, sn.ds.Inventory, sn.ds.Registry,
		sn.ds.Threat, notify.Config{MinDevices: minDevices, MinPackets: 1})
	legacyWriteJSON(w, http.StatusOK, map[string]any{"reports": bundles})
}

func (sn *legacySnap) handleMalware(w http.ResponseWriter, _ *http.Request) {
	legacyWriteJSON(w, http.StatusOK, map[string]any{
		"hashes":   sn.res.Malware.Hashes,
		"domains":  sn.res.Malware.Domains,
		"families": sn.res.Malware.Families,
		"devices":  sn.res.Malware.MatchedDevices,
	})
}
