package apiserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotscope/internal/core"
)

// TestChaosNoMixedGenerationReads hammers the view-backed endpoints while
// the snapshot is hot-swapped between datasets with distinguishable
// analyzed state, and proves no response is ever torn or mixed across
// generations: every body must be exactly the canonical body of the
// snapshot its ETag names. One stale-but-consistent response is fine
// (the client raced a swap); a body from one generation under another
// generation's validator is the failure the materialized read side
// exists to rule out.
func TestChaosNoMixedGenerationReads(t *testing.T) {
	paths := []string{"/v1/summary", "/v1/devices?limit=5", "/v1/signatures"}

	// Three variants with distinct analyzed state (different seeds), each
	// with its canonical response bodies keyed by content digest.
	type variant struct {
		ds  *core.Dataset
		res *core.Results
	}
	var variants []variant
	canonical := map[string]map[string]string{} // digest → path → body
	for i, seed := range []uint64{11, 22, 33} {
		dir, err := os.MkdirTemp("", "apiserve-chaosmv-*")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg := core.DefaultConfig(0.002, seed)
		cfg.Hours = 24
		ds, err := core.Generate(cfg, dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ds.Analyze(cfg)
		if err != nil {
			t.Fatal(err)
		}
		variants = append(variants, variant{ds, res})

		digest := fmt.Sprintf("%08x", res.Views.Digest())
		if _, dup := canonical[digest]; dup {
			t.Fatalf("variant %d shares a digest with an earlier one; chaos would be vacuous", i)
		}
		solo, err := New(ds, res, []string{testToken})
		if err != nil {
			t.Fatal(err)
		}
		canonical[digest] = map[string]string{}
		for _, p := range paths {
			rec := doGet(solo, p, "")
			if rec.Code != http.StatusOK {
				t.Fatalf("variant %d %s: status %d", i, p, rec.Code)
			}
			canonical[digest][p] = rec.Body.String()
		}
	}

	s, err := New(variants[0].ds, variants[0].res, []string{testToken})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 30
	var stop atomic.Bool
	var served atomic.Uint64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				path := paths[(c+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				req.Header.Set("Authorization", "Bearer "+testToken)
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", path, rec.Code)
					return
				}
				etag := rec.Header().Get("ETag")
				digest := digestOfETag(etag)
				want, ok := canonical[digest][path]
				if !ok {
					errCh <- fmt.Errorf("%s: etag %q names an unknown digest", path, etag)
					return
				}
				if rec.Body.String() != want {
					errCh <- fmt.Errorf("%s: MIXED GENERATION: body does not match snapshot %q", path, etag)
					return
				}
				served.Add(1)
			}
		}(c)
	}

	// 25 hot swaps cycling the variants under full load.
	for i := 1; i <= 25; i++ {
		v := variants[i%len(variants)]
		if _, err := s.Swap(v.ds, v.res); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := served.Load(); n < 100 {
		t.Fatalf("only %d verified responses; load too thin to mean anything", n)
	}
	t.Logf("verified %d responses across 25 swaps, %d variants", served.Load(), len(variants))
}

// digestOfETag extracts the content-digest half of a `"g<gen>-<digest>"`
// validator.
func digestOfETag(etag string) string {
	s := strings.Trim(etag, `"`)
	if i := strings.LastIndexByte(s, '-'); i >= 0 {
		return s[i+1:]
	}
	return ""
}
