package apiserve

import (
	"fmt"
	"time"

	"iotscope/internal/core"
)

// Snapshot is one immutable (dataset, results) pair the server serves
// from. The server swaps whole snapshots atomically, so every request
// observes a consistent dataset/results pair even while a hot reload is
// in flight: a handler loads the pointer once and uses that snapshot for
// its entire lifetime.
type Snapshot struct {
	ds  *core.Dataset
	res *core.Results

	// Generation counts snapshot swaps, starting at 1 for the snapshot
	// the server booted with.
	Generation uint64
	// LoadedAt records when this snapshot was installed.
	LoadedAt time.Time
}

// Dataset exposes the snapshot's dataset (read-only by convention).
func (sn *Snapshot) Dataset() *core.Dataset { return sn.ds }

// Results exposes the snapshot's analysis results (read-only by
// convention).
func (sn *Snapshot) Results() *core.Results { return sn.res }

// reloadFailure records the most recent failed reload; serving continues
// from the previous snapshot but health reports degraded until a reload
// succeeds.
type reloadFailure struct {
	msg string
	at  time.Time
}

// Swap atomically installs a new snapshot built from ds and res and
// returns its generation. A successful swap clears any recorded reload
// failure. The previous snapshot keeps serving requests that already
// loaded it.
func (s *Server) Swap(ds *core.Dataset, res *core.Results) (uint64, error) {
	if ds == nil || res == nil {
		return 0, fmt.Errorf("apiserve: nil dataset or results")
	}
	gen := s.gen.Add(1)
	s.snap.Store(&Snapshot{ds: ds, res: res, Generation: gen, LoadedAt: s.clock()})
	s.reloadFail.Store(nil)
	return gen, nil
}

// NoteReloadFailure records a failed reload attempt: the current snapshot
// keeps serving, and /healthz reports degraded until a later Swap
// succeeds. A bad reload must never crash or blank the API.
func (s *Server) NoteReloadFailure(err error) {
	if err == nil {
		return
	}
	s.reloadFail.Store(&reloadFailure{msg: err.Error(), at: s.clock()})
}

// Generation returns the generation of the currently served snapshot.
func (s *Server) Generation() uint64 { return s.snap.Load().Generation }

// Current returns the currently served snapshot.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// SetDraining flips the server's lifecycle state. While draining,
// /healthz answers 503 with status "draining" so load balancers stop
// routing new traffic; in-flight and late-arriving requests are still
// served normally until the listener closes.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }
