package apiserve

import (
	"fmt"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/matview"
)

// Snapshot is one immutable (dataset, results, views) triple the server
// serves from. The server swaps whole snapshots atomically, so every
// request observes a consistent dataset/results/views set even while a
// hot reload is in flight: a handler loads the pointer once and uses
// that snapshot for its entire lifetime.
type Snapshot struct {
	ds    *core.Dataset
	res   *core.Results
	views *matview.Views
	// etag is this snapshot's strong validator, "g<generation>-<digest>"
	// quoted: the generation pins the serving instance's swap history and
	// the resultstore content digest pins the analyzed state.
	etag string

	// Generation counts snapshot swaps, starting at 1 for the snapshot
	// the server booted with.
	Generation uint64
	// LoadedAt records when this snapshot was installed.
	LoadedAt time.Time
}

// Dataset exposes the snapshot's dataset (read-only by convention).
func (sn *Snapshot) Dataset() *core.Dataset { return sn.ds }

// Results exposes the snapshot's analysis results (read-only by
// convention).
func (sn *Snapshot) Results() *core.Results { return sn.res }

// Views exposes the snapshot's materialized read-side views.
func (sn *Snapshot) Views() *matview.Views { return sn.views }

// ETag is the snapshot's strong cache validator, quoted for direct use
// in ETag / If-None-Match headers.
func (sn *Snapshot) ETag() string { return sn.etag }

// reloadFailure records the most recent failed reload; serving continues
// from the previous snapshot but health reports degraded until a reload
// succeeds.
type reloadFailure struct {
	msg string
	at  time.Time
}

// Swap atomically installs a new snapshot built from ds and res and
// returns its generation. A successful swap clears any recorded reload
// failure. The previous snapshot keeps serving requests that already
// loaded it.
//
// Results produced by the analysis pipeline arrive with their read-side
// views already materialized (the materialize stage); hand-assembled
// Results get the same materialization here, so a served snapshot always
// has views. A failed build rejects the swap — the old snapshot keeps
// serving, exactly like a failed reload.
func (s *Server) Swap(ds *core.Dataset, res *core.Results) (uint64, error) {
	if ds == nil || res == nil {
		return 0, fmt.Errorf("apiserve: nil dataset or results")
	}
	views := res.Views
	if views == nil {
		v, err := matview.Build(matview.Sources{
			Result:    res.Correlate,
			Analyzer:  res.Analyzer,
			Summary:   res.Summary,
			StatTests: res.StatTests,
			Malware:   res.Malware,
			Inventory: ds.Inventory,
			Registry:  ds.Registry,
			Threat:    ds.Threat,
		})
		if err != nil {
			return 0, fmt.Errorf("apiserve: materialize views: %w", err)
		}
		views = v
	}
	gen := s.gen.Add(1)
	s.snap.Store(&Snapshot{
		ds: ds, res: res, views: views,
		etag:       fmt.Sprintf(`"g%d-%08x"`, gen, views.Digest()),
		Generation: gen, LoadedAt: s.clock(),
	})
	s.reloadFail.Store(nil)
	return gen, nil
}

// NoteReloadFailure records a failed reload attempt: the current snapshot
// keeps serving, and /healthz reports degraded until a later Swap
// succeeds. A bad reload must never crash or blank the API.
func (s *Server) NoteReloadFailure(err error) {
	if err == nil {
		return
	}
	s.reloadFail.Store(&reloadFailure{msg: err.Error(), at: s.clock()})
}

// Generation returns the generation of the currently served snapshot.
func (s *Server) Generation() uint64 { return s.snap.Load().Generation }

// Current returns the currently served snapshot.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// SetDraining flips the server's lifecycle state. While draining,
// /healthz answers 503 with status "draining" so load balancers stop
// routing new traffic; in-flight and late-arriving requests are still
// served normally until the listener closes.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }
