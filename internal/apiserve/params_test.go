package apiserve

import (
	"net/http"
	"testing"

	"iotscope/internal/stream"
)

// The parameter-validation contract, table-driven: every bounded query
// parameter on a read endpoint rejects out-of-range or unparsable values
// with 400 and a parameter-specific message — values are never silently
// capped. (The alerts ?wait clamp is the one documented exception,
// covered below.)
func TestParamValidation(t *testing.T) {
	s := loadServer(t)

	cases := []struct {
		path    string
		code    int
		errMsg  string // checked only for non-200s
		comment string
	}{
		// /v1/devices limit
		{"/v1/devices?limit=0", 400, "limit must be 1..1000", "below range"},
		{"/v1/devices?limit=1001", 400, "limit must be 1..1000", "above range, not capped"},
		{"/v1/devices?limit=abc", 400, "limit must be 1..1000", "unparsable"},
		{"/v1/devices?limit=1", 200, "", "lower bound inclusive"},
		{"/v1/devices?limit=1000", 200, "", "upper bound inclusive"},
		// /v1/devices offset
		{"/v1/devices?offset=-1", 400, "offset must be >= 0", "negative"},
		{"/v1/devices?offset=1.5", 400, "offset must be >= 0", "not an integer"},
		{"/v1/devices?offset=0", 200, "", "zero offset"},
		// /v1/devices category + cursor
		{"/v1/devices?category=toaster", 400, "unknown category", "unknown category"},
		{"/v1/devices?category=consumer", 200, "", "valid category"},
		{"/v1/devices?cursor=!!!", 400, "bad cursor", "garbage cursor"},
		{"/v1/devices?cursor=bm90LWEtY3Vyc29y", 400, "bad cursor", "well-formed base64, wrong payload"},
		{"/v1/devices?cursor=start&offset=5", 400, "cursor and offset are mutually exclusive", "mixed paging modes"},
		{"/v1/devices?cursor=start", 200, "", "cursor sentinel"},
		// /v1/ports/udp n
		{"/v1/ports/udp?n=0", 400, "n must be 1..1000", "below range"},
		{"/v1/ports/udp?n=1001", 400, "n must be 1..1000", "above range, not capped"},
		{"/v1/ports/udp?n=x", 400, "n must be 1..1000", "unparsable"},
		{"/v1/ports/udp?n=1", 200, "", "lower bound"},
		// /v1/spikes threshold
		{"/v1/spikes?threshold=1", 400, "threshold must be > 1", "floor is exclusive"},
		{"/v1/spikes?threshold=0.5", 400, "threshold must be > 1", "below floor"},
		{"/v1/spikes?threshold=x", 400, "threshold must be > 1", "unparsable"},
		// NaN compares false against any floor; the validator must not let
		// it through to the encoder (the pre-matview handler did, and the
		// response body broke mid-encode).
		{"/v1/spikes?threshold=NaN", 400, "threshold must be > 1", "NaN rejected"},
		{"/v1/spikes?threshold=1.001", 200, "", "just above floor"},
		// /v1/reports minDevices
		{"/v1/reports?minDevices=0", 400, "minDevices must be >= 1", "below floor"},
		{"/v1/reports?minDevices=-3", 400, "minDevices must be >= 1", "negative"},
		{"/v1/reports?minDevices=z", 400, "minDevices must be >= 1", "unparsable"},
		{"/v1/reports?minDevices=1", 200, "", "floor inclusive"},
		// path params
		{"/v1/devices/notanid", 400, "bad device id", "non-numeric id"},
		{"/v1/threats/999.1.1.1", 400, "bad IP", "invalid IP"},
	}
	for _, tc := range cases {
		code, body := get(t, s, tc.path, testToken)
		if code != tc.code {
			t.Errorf("%s (%s): status %d, want %d (%v)", tc.path, tc.comment, code, tc.code, body)
			continue
		}
		if tc.code != http.StatusOK {
			if got, _ := body["error"].(string); got != tc.errMsg {
				t.Errorf("%s (%s): error %q, want %q", tc.path, tc.comment, got, tc.errMsg)
			}
		}
	}
}

// The documented exception to reject-with-400: the alerts long-poll
// ?wait is a latency knob, not a result bound, so oversized values are
// clamped to the server maximum instead of rejected. Malformed values
// are still 400s.
func TestAlertsWaitClampException(t *testing.T) {
	loadServer(t) // populate the shared srvDS/srvRes fixture
	s, err := New(srvDS, srvRes, []string{testToken}, WithAlerts(stream.NewHub(nil)))
	if err != nil {
		t.Fatal(err)
	}

	if code, body := get(t, s, "/v1/alerts?wait=bogus", testToken); code != http.StatusBadRequest ||
		body["error"] != "bad wait duration" {
		t.Fatalf("malformed wait: %d %v", code, body)
	}
	// wait=0 answers immediately with the (empty) backlog — the oversized
	// clamp itself is pinned in the stream package tests, where the clock
	// is controllable.
	if code, _ := get(t, s, "/v1/alerts?wait=0s", testToken); code != http.StatusOK {
		t.Fatalf("wait=0s: status %d", code)
	}
}
