package apiserve

// Chaos tests for the serving path, in the spirit of internal/faultfs but
// aimed at HTTP: hot reload under concurrent load, admission-control
// shedding while a slow client pins a slot, rate-limit rejection, and
// graceful drain with a request still in flight. All are run under the
// race detector by `make chaos`.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosReloadUnderLoad swaps snapshots repeatedly while 50 clients
// hammer the API. Every response must be a success — an atomic snapshot
// swap can never surface as a 5xx or a torn read.
func TestChaosReloadUnderLoad(t *testing.T) {
	s := loadServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	paths := []string{"/healthz", "/v1/summary", "/v1/devices?limit=10", "/v1/ports/udp?n=5"}
	stop := make(chan struct{})
	var server5xx atomic.Int64
	var requests atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest("GET", ts.URL+paths[i%len(paths)], nil)
				req.Header.Set("Authorization", "Bearer "+testToken)
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("request error: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
				}
			}
		}(i)
	}

	// Hot-swap the snapshot 25 times mid-flight.
	startGen := s.Generation()
	for i := 0; i < 25; i++ {
		if _, err := s.Swap(srvDS, srvRes); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := server5xx.Load(); n != 0 {
		t.Fatalf("%d 5xx responses during reload (of %d requests)", n, requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no requests completed")
	}
	if got := s.Generation(); got != startGen+25 {
		t.Fatalf("generation %d, want %d", got, startGen+25)
	}
}

// TestChaosCorruptReloadKeepsServing simulates a failed reload: the old
// snapshot keeps serving, generation does not advance, and /healthz
// reports degraded with the reload error — then a good reload recovers.
func TestChaosCorruptReloadKeepsServing(t *testing.T) {
	s := loadServer(t)
	gen := s.Generation()
	s.NoteReloadFailure(fmt.Errorf("verify hour 3: corrupt frame"))

	if s.Generation() != gen {
		t.Fatal("failed reload advanced the generation")
	}
	code, body := get(t, s, "/healthz", "")
	if code != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("health after bad reload: %d %v", code, body)
	}
	lre, ok := body["lastReloadError"].(map[string]any)
	if !ok || lre["error"] == "" {
		t.Fatalf("lastReloadError missing: %v", body)
	}
	// Old snapshot still serves data.
	if code, _ := get(t, s, "/v1/summary", testToken); code != http.StatusOK {
		t.Fatalf("summary after bad reload: %d", code)
	}

	// A successful swap clears the degradation.
	if _, err := s.Swap(srvDS, srvRes); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, s, "/healthz", "")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health after recovery: %d %v", code, body)
	}
	if _, still := body["lastReloadError"]; still {
		t.Fatalf("reload error survived recovery: %v", body)
	}
}

// TestChaosSlowClientShedsLoad pins every concurrency slot with requests
// that cannot complete (the server is stuck writing to clients that never
// read on), then verifies: extra requests shed fast with 503 +
// Retry-After, /healthz stays exempt, and capacity recovers when the slow
// clients depart.
func TestChaosSlowClientShedsLoad(t *testing.T) {
	loadServer(t)
	s, err := New(srvDS, srvRes, []string{testToken},
		WithConcurrencyLimit(2, 3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.mux.HandleFunc("GET /v1/stall-test", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(release)

	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/stall-test")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-started
	<-started

	// Saturated: a real endpoint sheds with 503 + Retry-After.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/summary", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: %d", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", resp.Header.Get("Retry-After"))
	}

	// Health probes bypass the limiter even at capacity.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while saturated: %d", resp.StatusCode)
	}
}

// TestChaosRateLimit429 exhausts one token's bucket and expects 429 +
// Retry-After while a second token keeps its own budget.
func TestChaosRateLimit429(t *testing.T) {
	loadServer(t)
	s, err := New(srvDS, srvRes, []string{testToken, "other-token"},
		WithRateLimit(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	var code int
	var rec *httptest.ResponseRecorder
	for i := 0; i < 4; i++ {
		req := httptest.NewRequest("GET", "/v1/summary", nil)
		req.Header.Set("Authorization", "Bearer "+testToken)
		rec = httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		code = rec.Code
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("4th request within burst 3: %d", code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", rec.Header().Get("Retry-After"))
	}
	// Independent token unaffected.
	if code, _ := get(t, s, "/v1/summary", "other-token"); code != http.StatusOK {
		t.Fatalf("second token throttled: %d", code)
	}
	// Unauthenticated requests never consume rate budget and stay 401.
	if code, _ := get(t, s, "/v1/summary", "bogus"); code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d", code)
	}
}

// TestChaosShutdownDrainsInFlight starts a request that is mid-handler
// when Shutdown begins and verifies it completes with 200 while /healthz
// flips to draining (503) for load balancers.
func TestChaosShutdownDrainsInFlight(t *testing.T) {
	s := loadServer(t)
	defer s.SetDraining(false)
	release := make(chan struct{})
	entered := make(chan struct{})
	s.mux.HandleFunc("GET /v1/drain-test", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/v1/drain-test")
		if err != nil {
			inFlight <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			inFlight <- fmt.Errorf("in-flight request got %d", resp.StatusCode)
			return
		}
		inFlight <- nil
	}()
	<-entered

	// Flip to draining with the request still inside the handler: probes
	// on another connection must see 503/"draining" before the listener
	// even closes, so load balancers stop routing early.
	s.SetDraining(true)
	probe, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz during drain: %v", err)
	}
	code := probe.StatusCode
	io.Copy(io.Discard, probe.Body)
	probe.Body.Close()
	if code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", code)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- httpSrv.Shutdown(ctx) }()

	close(release)
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}

// TestHealthSnapshotFields checks the generation/loadedAt exposure the hot
// reload machinery promises operators.
func TestHealthSnapshotFields(t *testing.T) {
	s := loadServer(t)
	_, body := get(t, s, "/healthz", "")
	snap, ok := body["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("no snapshot block: %v", body)
	}
	if snap["generation"].(float64) < 1 {
		t.Fatalf("generation %v", snap["generation"])
	}
	if _, err := time.Parse(time.RFC3339, snap["loadedAt"].(string)); err != nil {
		t.Fatalf("loadedAt %v: %v", snap["loadedAt"], err)
	}
}
