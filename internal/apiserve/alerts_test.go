package apiserve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iotscope/internal/stream"
)

func alertServer(t *testing.T) (*Server, *stream.Hub) {
	t.Helper()
	loadServer(t)
	hub := stream.NewHub(nil)
	s, err := New(srvDS, srvRes, []string{testToken}, WithAlerts(hub))
	if err != nil {
		t.Fatal(err)
	}
	return s, hub
}

func TestAlertsRequireHub(t *testing.T) {
	s := loadServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/alerts", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("alerts without hub: %d, want 404", rec.Code)
	}
	if _, err := New(srvDS, srvRes, []string{testToken}, WithAlerts(nil)); err == nil {
		t.Error("nil hub accepted")
	}
}

func TestAlertsAuthAndList(t *testing.T) {
	s, hub := alertServer(t)
	if _, _, err := hub.Emit(stream.Alert{Kind: stream.KindNewDevice, Key: "device/9", Hour: 2, Device: 9}); err != nil {
		t.Fatal(err)
	}

	if code, _ := get(t, s, "/v1/alerts", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated alerts: %d, want 401", code)
	}
	if code, _ := get(t, s, "/v1/alerts/stream", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated stream: %d, want 401", code)
	}

	code, body := get(t, s, "/v1/alerts?since=0", testToken)
	if code != http.StatusOK {
		t.Fatalf("alerts: %d %v", code, body)
	}
	alerts, ok := body["alerts"].([]any)
	if !ok || len(alerts) != 1 {
		t.Fatalf("alerts payload: %v", body)
	}
	first, _ := alerts[0].(map[string]any)
	if first["key"] != "device/9" || body["latest"] != float64(1) {
		t.Fatalf("alert body: %v latest %v", first, body["latest"])
	}
}

func TestAlertsStreamSSE(t *testing.T) {
	s, hub := alertServer(t)
	if _, _, err := hub.Emit(stream.Alert{Kind: stream.KindDoSSpike, Key: "dos/h5", Hour: 5, Packets: 42}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+testToken)
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan stream.Alert, 2)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var a stream.Alert
				if json.Unmarshal([]byte(data), &a) == nil {
					events <- a
				}
			}
		}
	}()
	select {
	case a := <-events:
		if a.Key != "dos/h5" || a.ID != 1 {
			t.Fatalf("replayed alert: %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backlog alert never arrived over SSE")
	}
}
