package apiserve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
)

var etagRe = regexp.MustCompile(`^"g\d+-[0-9a-f]{8}"$`)

// Every view-backed endpoint must carry the snapshot's strong validator
// and honor conditional requests.
func TestETagAndConditionalRequests(t *testing.T) {
	s := loadServer(t)

	paths := []string{
		"/v1/summary", "/v1/devices", "/v1/devices?limit=5",
		"/v1/ports/tcp", "/v1/ports/udp", "/v1/signatures",
		"/v1/campaigns", "/v1/malware", "/v1/reports", "/v1/spikes",
	}
	etag := s.Current().ETag()
	if !etagRe.MatchString(etag) {
		t.Fatalf("etag %q does not match the documented shape", etag)
	}
	for _, path := range paths {
		rec := doGet(s, path, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if got := rec.Header().Get("ETag"); got != etag {
			t.Errorf("%s: ETag %q, want %q", path, got, etag)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "private, must-revalidate" {
			t.Errorf("%s: Cache-Control %q", path, cc)
		}

		rec = doGet(s, path, etag)
		if rec.Code != http.StatusNotModified {
			t.Errorf("%s: If-None-Match exact: status %d, want 304", path, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("%s: 304 carries a body (%d bytes)", path, rec.Body.Len())
		}
	}

	// Validator matching forms.
	for _, inm := range []string{"*", `W/` + etag, `"other", ` + etag, ` ` + etag + ` `} {
		if rec := doGet(s, "/v1/summary", inm); rec.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, rec.Code)
		}
	}
	for _, inm := range []string{`"g999-deadbeef"`, `"other"`, etag[1 : len(etag)-1] /* unquoted */} {
		if rec := doGet(s, "/v1/summary", inm); rec.Code != http.StatusOK {
			t.Errorf("If-None-Match %q: status %d, want 200", inm, rec.Code)
		}
	}

	// Error responses from view endpoints are derived from the same
	// snapshot and carry its validator too.
	rec := doGet(s, "/v1/devices?limit=0", "")
	if rec.Code != http.StatusBadRequest || rec.Header().Get("ETag") != etag {
		t.Errorf("400 response: status %d etag %q", rec.Code, rec.Header().Get("ETag"))
	}
}

// A swap mints a new generation (new ETag) even for identical analyzed
// state; the digest half stays put so restarted peers still cross-validate.
func TestETagChangesAcrossSwap(t *testing.T) {
	s, err := New(srvDS, srvRes, []string{testToken})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Current().ETag()
	if _, err := s.Swap(srvDS, srvRes); err != nil {
		t.Fatal(err)
	}
	after := s.Current().ETag()
	if before == after {
		t.Fatalf("swap did not change the etag: %q", before)
	}
	wantSuffix := fmt.Sprintf("-%08x\"", srvRes.Views.Digest())
	for _, e := range []string{before, after} {
		if len(e) < len(wantSuffix) || e[len(e)-len(wantSuffix):] != wantSuffix {
			t.Errorf("etag %q does not end with digest %q", e, wantSuffix)
		}
	}

	// A stale validator from the previous generation revalidates as a miss.
	if rec := doGet(s, "/v1/summary", before); rec.Code != http.StatusOK {
		t.Errorf("stale etag got %d, want 200", rec.Code)
	}
}

func TestDebugVarsAndHandler(t *testing.T) {
	s, err := New(srvDS, srvRes, []string{testToken})
	if err != nil {
		t.Fatal(err)
	}
	loadServer(t)

	// Drive some traffic so the counters move: 2 requests, 1 revalidation.
	doGet(s, "/v1/summary", "")
	doGet(s, "/v1/summary", s.Current().ETag())

	v := s.Vars()
	if v.Generation != 1 || v.ETag != s.Current().ETag() {
		t.Fatalf("vars identity: %+v", v)
	}
	if v.Requests != 2 || v.NotModified != 1 || v.NotModifiedRatio != 0.5 {
		t.Fatalf("vars counters: %+v", v)
	}
	if v.MatView.Devices == 0 || v.MatView.StaticBytes == 0 || v.MatView.Digest == "" {
		t.Fatalf("matview stats empty: %+v", v.MatView)
	}

	// The debug mux is separate from the API mux: /debug/vars serves JSON
	// without auth, and pprof answers.
	h := s.DebugHandler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("/debug/vars: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", rec.Code)
	}
	// And the public API mux must NOT expose it.
	apiRec := doGet(loadServer(t), "/debug/vars", "")
	if apiRec.Code == http.StatusOK {
		t.Fatal("/debug/vars reachable through the public API mux")
	}
}

func doGet(s *Server, path, inm string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}
