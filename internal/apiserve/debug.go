package apiserve

import (
	"net/http"
	"net/http/pprof"
	"time"

	"iotscope/internal/matview"
	"iotscope/internal/resilience"
)

// DebugVars is the /debug/vars payload: one consistent snapshot of the
// serving counters and the current snapshot's materialization stats.
type DebugVars struct {
	Generation       uint64                   `json:"generation"`
	LoadedAt         string                   `json:"loadedAt"`
	ETag             string                   `json:"etag"`
	MatView          matview.Stats            `json:"matview"`
	Requests         uint64                   `json:"requests"`
	NotModified      uint64                   `json:"notModified"`
	NotModifiedRatio float64                  `json:"notModifiedRatio"`
	Draining         bool                     `json:"draining"`
	Admission        *resilience.LimiterStats `json:"admission,omitempty"`
	Rate             *resilience.RateStats    `json:"rate,omitempty"`
}

// Vars snapshots the serving counters (also used by tests and tooling).
func (s *Server) Vars() DebugVars {
	sn := s.snap.Load()
	v := DebugVars{
		Generation:  sn.Generation,
		LoadedAt:    sn.LoadedAt.UTC().Format(time.RFC3339),
		ETag:        sn.etag,
		MatView:     sn.views.Stats(),
		Requests:    s.requests.Load(),
		NotModified: s.notModified.Load(),
		Draining:    s.draining.Load(),
	}
	if v.Requests > 0 {
		v.NotModifiedRatio = float64(v.NotModified) / float64(v.Requests)
	}
	if s.limiter != nil {
		ls := s.limiter.Stats()
		v.Admission = &ls
	}
	if s.rate != nil {
		rs := s.rate.Stats()
		v.Rate = &rs
	}
	return v
}

// DebugHandler serves the operator-only observability surface: an
// expvar-style /debug/vars (snapshot generation, matview build stats,
// request and 304 counters, shed/429 counts) plus the net/http/pprof
// profiling endpoints. It is intentionally NOT mounted on the public API
// mux and carries no auth — iotserve binds it to a separate, off-by-
// default -debug-addr that should stay on loopback or an internal
// network.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Vars())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
