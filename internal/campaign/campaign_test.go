package campaign

import (
	"context"
	"os"
	"slices"
	"testing"

	"iotscope/internal/analysis"
	"iotscope/internal/correlate"
	"iotscope/internal/wgen"
)

// synthetic builds a correlate.Result with hand-placed port/device sets.
func synthetic(assign map[int][]uint16, pktsPerPort uint64) *correlate.Result {
	res := &correlate.Result{
		TCPScanPorts: make(map[uint16]*correlate.TCPPortAgg),
	}
	for id, ports := range assign {
		for _, port := range ports {
			agg := res.TCPScanPorts[port]
			if agg == nil {
				agg = &correlate.TCPPortAgg{}
				res.TCPScanPorts[port] = agg
			}
			agg.DevicesConsumer = append(agg.DevicesConsumer, int32(id))
			agg.Packets += pktsPerPort
		}
	}
	for _, agg := range res.TCPScanPorts {
		slices.Sort(agg.DevicesConsumer)
	}
	return res
}

func TestDetectSeparatesCohorts(t *testing.T) {
	// Cohort A: devices 1-4 scan 23+2323. Cohort B: devices 10-12 scan 22.
	// Device 99 scans 8080 alone (singleton, dropped).
	assign := map[int][]uint16{
		1: {23, 2323}, 2: {23, 2323}, 3: {23, 2323}, 4: {23, 2323},
		10: {22}, 11: {22}, 12: {22},
		99: {8080},
	}
	campaigns, err := Detect(synthetic(assign, 100), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 2 {
		t.Fatalf("campaigns %d: %+v", len(campaigns), campaigns)
	}
	if len(campaigns[0].Devices) != 4 || campaigns[0].Devices[0] != 1 {
		t.Fatalf("telnet cohort %+v", campaigns[0])
	}
	if len(campaigns[1].Devices) != 3 || campaigns[1].Devices[0] != 10 {
		t.Fatalf("ssh cohort %+v", campaigns[1])
	}
	// Telnet cohort's ports include both telnet ports.
	found := map[uint16]bool{}
	for _, p := range campaigns[0].Ports {
		found[p] = true
	}
	if !found[23] || !found[2323] {
		t.Fatalf("telnet cohort ports %v", campaigns[0].Ports)
	}
}

func TestDetectDoesNotBridgeViaSharedPort(t *testing.T) {
	// Devices 1-2 scan {23}; devices 3-4 scan {23, 80, 81, 8080} with 23 a
	// minor overlap — profiles differ enough that the similarity threshold
	// keeps them apart.
	assign := map[int][]uint16{
		1: {23}, 2: {23},
		3: {23, 80, 81, 8080}, 4: {23, 80, 81, 8080},
	}
	campaigns, err := Detect(synthetic(assign, 100), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 2 {
		t.Fatalf("expected 2 separate cohorts, got %+v", campaigns)
	}
}

func TestDetectSkipsSprayers(t *testing.T) {
	// Device 1 scans 40 distinct ports evenly: no campaign signal.
	ports := make([]uint16, 40)
	for i := range ports {
		ports[i] = uint16(1000 + i)
	}
	assign := map[int][]uint16{1: ports, 2: ports}
	cfg := DefaultConfig()
	cfg.MinPortShare = 0.01 // keep all ports significant
	campaigns, err := Detect(synthetic(assign, 100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) != 0 {
		t.Fatalf("sprayers clustered: %+v", campaigns)
	}
}

func TestDetectEmptyAndNil(t *testing.T) {
	if _, err := Detect(nil, DefaultConfig()); err == nil {
		t.Fatal("nil result accepted")
	}
	campaigns, err := Detect(synthetic(nil, 0), DefaultConfig())
	if err != nil || campaigns != nil {
		t.Fatalf("empty result: %v %v", campaigns, err)
	}
}

func TestWeightedJaccard(t *testing.T) {
	a := deviceProfile{ports: map[uint16]uint64{23: 50, 2323: 50}, total: 100}
	b := deviceProfile{ports: map[uint16]uint64{23: 50, 2323: 50}, total: 100}
	if sim := weightedJaccard(a, b); sim != 1 {
		t.Fatalf("identical profiles sim %v", sim)
	}
	c := deviceProfile{ports: map[uint16]uint64{22: 100}, total: 100}
	if sim := weightedJaccard(a, c); sim != 0 {
		t.Fatalf("disjoint profiles sim %v", sim)
	}
	// Half overlap: a={23:100}, d={23:50, 80:50} -> min 0.5 / max 1.5.
	e := deviceProfile{ports: map[uint16]uint64{23: 100}, total: 100}
	d := deviceProfile{ports: map[uint16]uint64{23: 50, 80: 50}, total: 100}
	if sim := weightedJaccard(e, d); sim < 0.33 || sim > 0.34 {
		t.Fatalf("partial overlap sim %v", sim)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Fatal("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Fatal("separate sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Fatal("transitive union failed")
	}
	if uf.find(2) == uf.find(0) {
		t.Fatal("untouched element merged")
	}
}

// End-to-end: campaigns recovered from a generated dataset must align with
// the planted service memberships.
func TestDetectOnGeneratedWorld(t *testing.T) {
	dir, err := os.MkdirTemp("", "campaign-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := wgen.Default(0.01, 777)
	sc.Hours = 48
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	res, err := correlate.New(g.Inventory(), correlate.Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	campaigns, err := Detect(res, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(campaigns) < 3 {
		t.Fatalf("detected %d campaigns, want several service cohorts", len(campaigns))
	}

	// The largest campaign must be the Telnet cohort (23/2323/23231).
	telnetPorts := map[uint16]bool{23: true, 2323: true, 23231: true}
	top := campaigns[0]
	if len(top.Ports) == 0 || !telnetPorts[top.Ports[0]] {
		t.Errorf("largest campaign leads with port %v, want a Telnet port", top.Ports)
	}

	// Campaign purity: members of each detected campaign should share the
	// dominant port; measure against the analyzer's service table.
	an := analysis.New(res, g.Inventory(), g.Registry())
	_ = an
	for _, c := range campaigns[:3] {
		if len(c.Devices) < 2 {
			t.Errorf("tiny campaign in top 3: %+v", c)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	// 300 devices across 5 cohorts.
	assign := make(map[int][]uint16, 300)
	cohorts := [][]uint16{{23, 2323}, {22}, {7547}, {80, 8080, 81}, {445}}
	for i := 0; i < 300; i++ {
		assign[i] = cohorts[i%len(cohorts)]
	}
	res := synthetic(assign, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(res, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
