// Package campaign clusters inferred scanning devices into coordinated
// campaigns — the "identifying and clustering IoT botnets and their illicit
// activities by solely scrutinizing passive measurements" the paper's
// conclusion names as future work (and its authors' CSC-Detector line of
// research).
//
// Two scanners belong to the same campaign when their target-port profiles
// are similar (weighted Jaccard over the ports that carry their scanning
// packets) — a Mirai-style cohort all hammering 23/2323, an SSH brute-force
// ring on 22, a CWMP sweep on 7547. Clustering is single-linkage over the
// similarity graph via union-find, which matches the transitive nature of
// botnet membership evidence.
package campaign

import (
	"fmt"
	"sort"

	"iotscope/internal/correlate"
)

// Config tunes campaign detection.
type Config struct {
	// MinPortShare drops a device's incidental ports: only ports carrying
	// at least this fraction of the device's scan packets define its
	// profile (default 0.05).
	MinPortShare float64
	// Similarity is the weighted-Jaccard threshold linking two devices
	// (default 0.5).
	Similarity float64
	// MinDevices drops singleton/tiny clusters from the output
	// (default 2).
	MinDevices int
	// MaxProfilePorts caps a device's profile size; devices scanning more
	// distinct significant ports than this are "sprayers" whose port set
	// carries no campaign signal, and they are skipped (default 16).
	MaxProfilePorts int
}

// DefaultConfig returns the experiment configuration.
func DefaultConfig() Config {
	return Config{
		MinPortShare:    0.05,
		Similarity:      0.5,
		MinDevices:      2,
		MaxProfilePorts: 16,
	}
}

func (c Config) withDefaults() Config {
	if c.MinPortShare <= 0 {
		c.MinPortShare = 0.05
	}
	if c.Similarity <= 0 {
		c.Similarity = 0.5
	}
	if c.MinDevices < 1 {
		c.MinDevices = 2
	}
	if c.MaxProfilePorts <= 0 {
		c.MaxProfilePorts = 16
	}
	return c
}

// Campaign is one detected cohort.
type Campaign struct {
	// Devices are the member device IDs, ascending.
	Devices []int
	// Ports is the union of the members' significant ports, by weight.
	Ports []uint16
	// Packets is the members' combined scan volume on those ports.
	Packets uint64
}

// deviceProfile is a device's significant-port scan profile.
type deviceProfile struct {
	id    int
	ports map[uint16]uint64
	total uint64
}

// Detect clusters the scanners in a correlation result.
func Detect(res *correlate.Result, cfg Config) ([]Campaign, error) {
	cfg = cfg.withDefaults()
	if res == nil {
		return nil, fmt.Errorf("campaign: nil result")
	}

	profiles := buildProfiles(res, cfg)
	if len(profiles) == 0 {
		return nil, nil
	}

	// Invert to port -> profile indices so similarity candidates are only
	// the devices sharing at least one significant port (the graph is
	// sparse: comparing all pairs would be quadratic in the population).
	byPort := make(map[uint16][]int)
	for i, p := range profiles {
		for port := range p.ports {
			byPort[port] = append(byPort[port], i)
		}
	}

	uf := newUnionFind(len(profiles))
	seenPair := make(map[[2]int]struct{})
	for _, members := range byPort {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				key := [2]int{a, b}
				if _, done := seenPair[key]; done {
					continue
				}
				seenPair[key] = struct{}{}
				if weightedJaccard(profiles[a], profiles[b]) >= cfg.Similarity {
					uf.union(a, b)
				}
			}
		}
	}

	// Materialize clusters.
	groups := make(map[int][]int)
	for i := range profiles {
		root := uf.find(i)
		groups[root] = append(groups[root], i)
	}
	var out []Campaign
	for _, members := range groups {
		if len(members) < cfg.MinDevices {
			continue
		}
		c := Campaign{}
		portW := make(map[uint16]uint64)
		for _, i := range members {
			p := profiles[i]
			c.Devices = append(c.Devices, p.id)
			for port, w := range p.ports {
				portW[port] += w
				c.Packets += w
			}
		}
		sort.Ints(c.Devices)
		c.Ports = sortPortsByWeight(portW)
		out = append(out, c)
	}
	// Largest campaigns first; ties by first device for determinism.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Devices) != len(out[j].Devices) {
			return len(out[i].Devices) > len(out[j].Devices)
		}
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Devices[0] < out[j].Devices[0]
	})
	return out, nil
}

// buildProfiles extracts per-device significant-port profiles from the
// correlation result's TCP scan port index.
func buildProfiles(res *correlate.Result, cfg Config) []deviceProfile {
	perDevice := make(map[int]map[uint16]uint64)
	for port, agg := range res.TCPScanPorts {
		// The per-port aggregate does not retain per-device packet splits;
		// attribute the port's packets evenly across its scanners. For
		// campaign detection only the *membership* structure matters, and
		// even-split weights preserve it.
		devs := len(agg.DevicesConsumer) + len(agg.DevicesCPS)
		if devs == 0 {
			continue
		}
		share := agg.Packets / uint64(devs)
		if share == 0 {
			share = 1
		}
		add := func(id int) {
			m := perDevice[id]
			if m == nil {
				m = make(map[uint16]uint64, 4)
				perDevice[id] = m
			}
			m[port] += share
		}
		for _, id := range agg.DevicesConsumer {
			add(int(id))
		}
		for _, id := range agg.DevicesCPS {
			add(int(id))
		}
	}

	ids := make([]int, 0, len(perDevice))
	for id := range perDevice {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	profiles := make([]deviceProfile, 0, len(ids))
	for _, id := range ids {
		all := perDevice[id]
		var total uint64
		for _, w := range all {
			total += w
		}
		sig := make(map[uint16]uint64)
		var sigTotal uint64
		for port, w := range all {
			if float64(w) >= cfg.MinPortShare*float64(total) {
				sig[port] = w
				sigTotal += w
			}
		}
		if len(sig) == 0 || len(sig) > cfg.MaxProfilePorts {
			continue
		}
		profiles = append(profiles, deviceProfile{id: id, ports: sig, total: sigTotal})
	}
	return profiles
}

// weightedJaccard computes sum(min)/sum(max) over normalized port weights.
func weightedJaccard(a, b deviceProfile) float64 {
	if a.total == 0 || b.total == 0 {
		return 0
	}
	var interMin, unionMax float64
	seen := make(map[uint16]struct{}, len(a.ports)+len(b.ports))
	for port, wa := range a.ports {
		fa := float64(wa) / float64(a.total)
		fb := float64(b.ports[port]) / float64(b.total)
		interMin += minF(fa, fb)
		unionMax += maxF(fa, fb)
		seen[port] = struct{}{}
	}
	for port, wb := range b.ports {
		if _, done := seen[port]; done {
			continue
		}
		unionMax += float64(wb) / float64(b.total)
	}
	if unionMax == 0 {
		return 0
	}
	return interMin / unionMax
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func sortPortsByWeight(w map[uint16]uint64) []uint16 {
	type pw struct {
		port uint16
		w    uint64
	}
	list := make([]pw, 0, len(w))
	for port, weight := range w {
		list = append(list, pw{port, weight})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].w != list[j].w {
			return list[i].w > list[j].w
		}
		return list[i].port < list[j].port
	})
	out := make([]uint16, len(list))
	for i, p := range list {
		out[i] = p.port
	}
	return out
}

// unionFind is a path-compressing disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	switch {
	case uf.rank[ra] < uf.rank[rb]:
		uf.parent[ra] = rb
	case uf.rank[ra] > uf.rank[rb]:
		uf.parent[rb] = ra
	default:
		uf.parent[rb] = ra
		uf.rank[ra]++
	}
}
