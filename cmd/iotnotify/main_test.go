package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/outqueue"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", "x", "-min-devices", "0"}); err == nil {
		t.Fatal("min-devices 0 accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := run([]string{"-data", "x", "-rate", "-1"}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := run([]string{"-data", "x", "-drain"}); err == nil {
		t.Fatal("-drain without -queue-dir accepted")
	}
	if err := run([]string{"-drain", "-queue-dir", t.TempDir() + "/q"}); err != nil {
		t.Fatalf("drain-only mode rejected: %v", err)
	}
}

func TestRunRendersBundles(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 4
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-top", "3"}); err != nil {
		t.Fatal(err)
	}

	// -top boundaries: 0 means "all", and a value far beyond the bundle
	// count clamps instead of indexing out of range.
	if err := run([]string{"-data", dir, "-top", "0"}); err != nil {
		t.Fatalf("-top 0: %v", err)
	}
	if err := run([]string{"-data", dir, "-top", "1000000"}); err != nil {
		t.Fatalf("-top beyond bundle count: %v", err)
	}

	// -min-devices boundaries: 1 is the floor; a huge threshold filters
	// every operator but still exits cleanly.
	if err := run([]string{"-data", dir, "-min-devices", "1"}); err != nil {
		t.Fatalf("-min-devices 1: %v", err)
	}
	if err := run([]string{"-data", dir, "-min-devices", "1000000"}); err != nil {
		t.Fatalf("-min-devices beyond device count: %v", err)
	}

	// PR 4's flag parity: -lenient is accepted like every other tool.
	if err := run([]string{"-data", dir, "-lenient", "-top", "1"}); err != nil {
		t.Fatalf("-lenient: %v", err)
	}
}

// The acceptance-criteria scenario, in process: enqueue, "kill" (abandon
// the queue object with no shutdown), restart with the same -queue-dir,
// re-run the full pipeline, drain — the delivery log holds every
// notification exactly once and the rerun's complaints are all suppressed.
func TestEnqueueKillRestartDrainExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 11)
	cfg.Hours = 4
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	queueDir := filepath.Join(t.TempDir(), "queue")
	sinkPath := filepath.Join(t.TempDir(), "delivered.txt")

	// First run: analysis + enqueue, no drain. The process "dies" after run
	// returns — nothing closes the queue; its durability is segment-based.
	if err := run([]string{"-data", dir, "-queue-dir", queueDir}); err != nil {
		t.Fatal(err)
	}
	q, err := outqueue.Open(queueDir)
	if err != nil {
		t.Fatal(err)
	}
	enqueued := q.Stats().Pending
	if enqueued == 0 {
		t.Fatal("first run enqueued nothing")
	}

	// Restart: same dataset, same queue. Every complaint is a repeat inside
	// its operator's suppression window; nothing new becomes pending.
	if err := run([]string{"-data", dir, "-queue-dir", queueDir}); err != nil {
		t.Fatal(err)
	}
	q2, err := outqueue.Open(queueDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Stats(); got.Pending != enqueued {
		t.Fatalf("rerun changed pending %d -> %d (dedup broken)", enqueued, got.Pending)
	}
	if got := q2.Stats(); got.Suppressed == 0 {
		t.Fatal("rerun suppressed nothing")
	}

	// Drain-only restart (no -data): deliver everything to the file sink.
	if err := run([]string{"-drain", "-queue-dir", queueDir, "-sink", sinkPath}); err != nil {
		t.Fatal(err)
	}
	// Drain again — idempotent; and drain after re-enqueueing the same world.
	if err := run([]string{"-drain", "-queue-dir", queueDir, "-sink", sinkPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-queue-dir", queueDir, "-drain", "-sink", sinkPath}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(sinkPath)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := outqueue.Open(queueDir)
	if err != nil {
		t.Fatal(err)
	}
	st := q3.Stats()
	if st.Pending != 0 || st.Sent != enqueued {
		t.Fatalf("final queue state %+v, want %d sent", st, enqueued)
	}
	for _, it := range q3.Items() {
		if it.State != outqueue.StateSent {
			continue
		}
		marker := fmt.Sprintf("=== end report id=%d\n", it.ID)
		if got := bytes.Count(data, []byte(marker)); got != 1 {
			t.Fatalf("item %d delivered %d times", it.ID, got)
		}
	}
}

// A drain cut short by rate limiting plus cancellation leaves the queue
// resumable: stdout-sink drain with -rate caps throughput but still
// delivers everything when allowed to finish.
func TestDrainRateFlag(t *testing.T) {
	queueDir := filepath.Join(t.TempDir(), "queue")
	q, err := outqueue.Open(queueDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue(
		outqueue.Notification{DedupKey: "as1", Contact: "a@b", Subject: "s", Body: "b", EventHour: 0},
		outqueue.Notification{DedupKey: "as2", Contact: "a@b", Subject: "s", Body: "b", EventHour: 0},
	); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-drain", "-queue-dir", queueDir, "-rate", "200", "-sink", "-"}); err != nil {
		t.Fatal(err)
	}
	q2, err := outqueue.Open(queueDir)
	if err != nil {
		t.Fatal(err)
	}
	if st := q2.Stats(); st.Pending != 0 || st.Sent != 2 {
		t.Fatalf("rated drain left %+v", st)
	}
}
