package main

import (
	"testing"

	"iotscope/internal/core"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", "x", "-min-devices", "0"}); err == nil {
		t.Fatal("min-devices 0 accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRunRendersBundles(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 4
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-top", "3"}); err != nil {
		t.Fatal(err)
	}

	// -top boundaries: 0 means "all", and a value far beyond the bundle
	// count clamps instead of indexing out of range.
	if err := run([]string{"-data", dir, "-top", "0"}); err != nil {
		t.Fatalf("-top 0: %v", err)
	}
	if err := run([]string{"-data", dir, "-top", "1000000"}); err != nil {
		t.Fatalf("-top beyond bundle count: %v", err)
	}

	// -min-devices boundaries: 1 is the floor; a huge threshold filters
	// every operator but still exits cleanly.
	if err := run([]string{"-data", dir, "-min-devices", "1"}); err != nil {
		t.Fatalf("-min-devices 1: %v", err)
	}
	if err := run([]string{"-data", dir, "-min-devices", "1000000"}); err != nil {
		t.Fatalf("-min-devices beyond device count: %v", err)
	}
}
