// Command iotnotify runs the paper's notification pipeline: it renders
// per-ISP abuse complaints from a dataset, resolves each operator's abuse
// contact through the fallback chain, enqueues the complaints into a
// crash-safe outbound queue, and drains the queue to a delivery sink under
// retry and rate-limit policies — the operational form of "Internet-wide,
// IoT-tailored notifications of such exploitations, thus permitting rapid
// remediation".
//
// Usage:
//
//	iotnotify -data DIR [-top 10] [-min-devices 1] [-lenient]
//	          [-queue-dir DIR] [-drain] [-rate N] [-sink FILE|-]
//	          [-stage-report FILE|-]
//
// Without -queue-dir the tool renders the largest bundles to stdout, as
// before. With -queue-dir the analysis feeds resolve → render → enqueue
// stages whose queue survives kills and restarts; -drain then delivers the
// pending queue to the sink (-sink FILE appends to an idempotent delivery
// log, "-" writes to stdout) at -rate notifications/second (0 = unpaced).
// -drain without -data skips analysis and only drains an existing queue —
// the restart path after a crash. SIGINT/SIGTERM cancel cleanly: queue
// state is always consistent, and a later drain resumes where this one
// stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotscope/internal/abusecontact"
	"iotscope/internal/core"
	"iotscope/internal/notify"
	"iotscope/internal/outqueue"
	"iotscope/internal/pipeline"
	"iotscope/internal/resilience"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotnotify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotnotify", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset directory")
		top         = fs.Int("top", 10, "render only the N largest bundles (0 = all)")
		minDevices  = fs.Int("min-devices", 1, "skip operators with fewer compromised devices")
		lenient     = fs.Bool("lenient", false, "quarantine unreadable hours instead of failing")
		queueDir    = fs.String("queue-dir", "", "enqueue complaints into the crash-safe queue at this directory")
		drain       = fs.Bool("drain", false, "deliver the queue's pending notifications to the sink")
		rate        = fs.Float64("rate", 0, "deliveries per second during drain (0 = unpaced)")
		sinkPath    = fs.String("sink", "-", "drain target: file path for the idempotent delivery log, - for stdout")
		stageReport = fs.String("stage-report", "", "write per-stage pipeline metrics JSON to this file (- = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" && !(*queueDir != "" && *drain) {
		return fmt.Errorf("-data is required (omit it only for -queue-dir with -drain)")
	}
	if *minDevices < 1 {
		return fmt.Errorf("-min-devices must be >= 1")
	}
	if *rate < 0 {
		return fmt.Errorf("-rate must be >= 0")
	}
	if *drain && *queueDir == "" {
		return fmt.Errorf("-drain requires -queue-dir")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		q      *outqueue.Queue
		err    error
		stages []pipeline.Stage
	)
	if *queueDir != "" {
		if q, err = outqueue.Open(*queueDir); err != nil {
			return err
		}
	}

	var bundles []notify.Bundle
	if *data != "" {
		ds, err := core.Open(*data)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
		cfg.Lenient = *lenient
		res := &core.Results{}
		stages = append(ds.AnalysisStages(cfg, res),
			pipeline.Func("notify", func(ctx context.Context, st *pipeline.State) error {
				bundles = notify.BuildBundles(notify.Sources{
					Result:    res.Correlate,
					Inventory: ds.Inventory,
					Registry:  ds.Registry,
					Threat:    ds.Threat,
					Malware:   ds.Malware,
					Catalog:   ds.Catalog,
				}, notify.Config{MinDevices: *minDevices, MinPackets: 1})
				m := pipeline.Meter(ctx)
				m.RecordsIn = uint64(len(res.Correlate.Devices))
				m.RecordsOut = uint64(len(bundles))
				return nil
			}))
		if q != nil {
			resolver := abusecontact.NewResolver(
				abusecontact.Derive(ds.Registry, ds.Scenario.Seed))
			eventHour := func() int {
				if res.Correlate.Hours > 0 {
					return res.Correlate.Hours - 1
				}
				return 0
			}
			contacts := make(map[int]abusecontact.Contact)
			var complaints []outqueue.Notification

			stages = append(stages,
				pipeline.Func("resolve", func(ctx context.Context, st *pipeline.State) error {
					unresolved := 0
					for _, b := range bundles {
						c, err := resolver.Resolve(b.ISPIndex)
						if err != nil {
							unresolved++
							continue
						}
						contacts[b.ISPIndex] = c
					}
					m := pipeline.Meter(ctx)
					m.RecordsIn = uint64(len(bundles))
					m.RecordsOut = uint64(len(contacts))
					m.Note = resolver.Stats().String()
					if unresolved == len(bundles) && len(bundles) > 0 {
						return fmt.Errorf("no abuse contact resolved for any of %d operators", len(bundles))
					}
					return nil
				}),
				pipeline.Func("render", func(ctx context.Context, st *pipeline.State) error {
					hour := eventHour()
					for _, b := range bundles {
						c, ok := contacts[b.ISPIndex]
						if !ok {
							continue
						}
						key := fmt.Sprintf("as%d", b.ASN)
						meta := notify.ComplaintMeta{
							Contact:     c.Email,
							Tier:        c.Source,
							WindowHours: outqueue.InitialWindowHours,
						}
						if ks, ok := q.Key(key); ok && ks.Reports > 0 {
							meta.Repeat = true
							meta.WindowHours = ks.WindowHours * 2
						}
						complaint, err := notify.RenderComplaint(b, meta)
						if err != nil {
							return err
						}
						complaints = append(complaints, outqueue.Notification{
							DedupKey:  key,
							Contact:   c.Email,
							Tier:      c.Source,
							Subject:   complaint.Subject,
							Body:      complaint.Body,
							EventHour: hour,
							Devices:   len(b.Devices),
							Packets:   b.Packets,
						})
					}
					m := pipeline.Meter(ctx)
					m.RecordsIn = uint64(len(bundles))
					m.RecordsOut = uint64(len(complaints))
					return nil
				}),
				pipeline.Func("enqueue", func(ctx context.Context, st *pipeline.State) error {
					_, es, err := q.Enqueue(complaints...)
					if err != nil {
						return err
					}
					m := pipeline.Meter(ctx)
					m.RecordsIn = uint64(len(complaints))
					m.RecordsOut = uint64(es.Enqueued)
					m.Note = fmt.Sprintf("enqueued %d, suppressed %d", es.Enqueued, es.Suppressed)
					return nil
				}))
		}
	}

	var drainStats outqueue.DrainStats
	if *drain {
		stages = append(stages,
			pipeline.Func("deliver", func(ctx context.Context, st *pipeline.State) error {
				sink, closeSink, err := openSink(*sinkPath)
				if err != nil {
					return err
				}
				defer closeSink()
				opts := outqueue.DrainOptions{
					Policy: pipeline.RetryPolicy{
						MaxRetries:  4,
						BaseBackoff: 50 * time.Millisecond,
					},
				}
				if *rate > 0 {
					lim, err := resilience.NewRateLimiter(*rate, 1)
					if err != nil {
						return err
					}
					opts.Limiter = lim
				}
				drainStats, err = q.Drain(ctx, sink, opts)
				m := pipeline.Meter(ctx)
				m.RecordsIn = uint64(drainStats.Delivered + drainStats.Failed + drainStats.Remaining)
				m.RecordsOut = uint64(drainStats.Delivered)
				m.Retries = drainStats.Attempts - drainStats.Delivered - drainStats.Failed
				return err
			}))
	}

	rep, err := pipeline.New("notify", stages...).Run(ctx, nil)
	if emitErr := pipeline.EmitReport(rep, *stageReport); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}

	switch {
	case q != nil:
		qs := q.Stats()
		fmt.Printf("queue %s: %d items (%d pending, %d sent, %d failed, %d suppressed) across %d operators\n",
			q.Dir(), qs.Items, qs.Pending, qs.Sent, qs.Failed, qs.Suppressed, qs.Keys)
		if *drain {
			fmt.Printf("drain: delivered %d, failed %d, attempts %d, remaining %d\n",
				drainStats.Delivered, drainStats.Failed, drainStats.Attempts, drainStats.Remaining)
		}
	default:
		fmt.Printf("%d operators host inferred compromised IoT devices\n\n", len(bundles))
		n := len(bundles)
		if *top > 0 && *top < n {
			n = *top
		}
		for i := 0; i < n; i++ {
			if err := bundles[i].Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println("----------------------------------------------------------------")
		}
	}
	return nil
}

// openSink builds the drain sink: "-" renders to stdout, anything else is
// an idempotent append-only delivery log.
func openSink(path string) (outqueue.Sink, func(), error) {
	if path == "-" || path == "" {
		return &outqueue.WriterSink{W: os.Stdout}, func() {}, nil
	}
	fsink, err := outqueue.NewFileSink(path)
	if err != nil {
		return nil, nil, err
	}
	return fsink, func() { fsink.Close() }, nil
}
