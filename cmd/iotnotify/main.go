// Command iotnotify renders per-ISP abuse notifications from a dataset —
// the paper's "Internet-wide, IoT-tailored notifications of such
// exploitations, thus permitting rapid remediation".
//
// Usage:
//
//	iotnotify -data DIR [-top 10] [-min-devices 1] [-stage-report FILE|-]
//
// The analysis runs through the staged pipeline engine with a trailing
// "notify" stage that builds the per-ISP bundles; -stage-report dumps the
// per-stage metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"iotscope/internal/core"
	"iotscope/internal/notify"
	"iotscope/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotnotify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotnotify", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset directory (required)")
		top         = fs.Int("top", 10, "render only the N largest bundles (0 = all)")
		minDevices  = fs.Int("min-devices", 1, "skip operators with fewer compromised devices")
		stageReport = fs.String("stage-report", "", "write per-stage pipeline metrics JSON to this file (- = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if *minDevices < 1 {
		return fmt.Errorf("-min-devices must be >= 1")
	}
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	res := &core.Results{}
	var bundles []notify.Bundle
	stages := append(ds.AnalysisStages(cfg, res),
		pipeline.Func("notify", func(ctx context.Context, st *pipeline.State) error {
			bundles = notify.Build(res.Correlate, ds.Inventory, ds.Registry, ds.Threat,
				notify.Config{MinDevices: *minDevices, MinPackets: 1})
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(len(res.Correlate.Devices))
			m.RecordsOut = uint64(len(bundles))
			return nil
		}))
	rep, err := pipeline.New("notify", stages...).Run(ctx, nil)
	if emitErr := pipeline.EmitReport(rep, *stageReport); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%d operators host inferred compromised IoT devices\n\n", len(bundles))
	n := len(bundles)
	if *top > 0 && *top < n {
		n = *top
	}
	for i := 0; i < n; i++ {
		if err := bundles[i].Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println("----------------------------------------------------------------")
	}
	return nil
}
