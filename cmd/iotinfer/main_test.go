package main

import (
	"testing"

	"iotscope/internal/core"
)

func testDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 4
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset dir accepted")
	}
}

func TestRunText(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir, "-json", "-workers", "2", "-sketch"}); err != nil {
		t.Fatal(err)
	}
}
