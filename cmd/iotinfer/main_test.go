package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/resultstore"
)

func testDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 4
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset dir accepted")
	}
}

func TestRunText(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir, "-json", "-workers", "2", "-sketch"}); err != nil {
		t.Fatal(err)
	}
}

// -save must leave a verifiable result store artifact behind that holds
// the same correlation state a direct analysis produces, and iotserve can
// later open it against the same dataset.
func TestRunSave(t *testing.T) {
	dir := testDataset(t)
	store := filepath.Join(t.TempDir(), "store.irs")
	if err := run([]string{"-data", dir, "-save", store}); err != nil {
		t.Fatal(err)
	}
	info, err := resultstore.Verify(store)
	if err != nil {
		t.Fatalf("saved store does not verify: %v", err)
	}
	if info.Kind != resultstore.KindResult || info.Hours != 4 {
		t.Fatalf("store info %+v, want result over 4 hours", info)
	}
	ds, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ds.OpenSnapshot(store)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Correlate, loaded) {
		t.Fatal("saved store differs from direct analysis")
	}
}
