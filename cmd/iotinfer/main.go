// Command iotinfer runs the paper's inference pipeline over a dataset
// directory and emits the headline results (optionally as JSON).
//
// Usage:
//
//	iotinfer -data DIR [-json] [-workers N] [-sketch]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"iotscope/internal/core"
	"iotscope/internal/profiling"
	"iotscope/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotinfer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotinfer", flag.ContinueOnError)
	var (
		data    = fs.String("data", "", "dataset directory (required)")
		asJSON  = fs.Bool("json", false, "emit machine-readable JSON")
		workers = fs.Int("workers", 0, "concurrent hour files (0 = GOMAXPROCS)")
		sketch  = fs.Bool("sketch", false, "use HyperLogLog destination counters")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "iotinfer:", err)
		}
	}()
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Workers = *workers
	cfg.UseSketches = *sketch
	res, err := ds.Analyze(cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		out := map[string]any{
			"summary":          res.Summary,
			"statTests":        res.StatTests,
			"threatFlagged":    len(res.Threat.Flagged),
			"threatExplored":   res.Threat.Explored,
			"malwareHashes":    res.Malware.Hashes,
			"malwareFamilies":  res.Malware.Families,
			"malwareDomains":   len(res.Malware.Domains),
			"background":       res.Correlate.Background,
			"datasetScale":     ds.Scenario.Scale,
			"datasetSeed":      ds.Scenario.Seed,
			"datasetHours":     ds.Scenario.Hours,
			"inventoryDevices": ds.Inventory.Len(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return report.Headline(os.Stdout, res)
}
