// Command iotinfer runs the paper's inference pipeline over a dataset
// directory and emits the headline results (optionally as JSON).
//
// The analysis runs through the staged pipeline engine (correlate →
// characterize → stat-tests → threat-intel → malware); -stage-report dumps
// the per-stage metrics, and an interrupt cancels the run mid-stage.
//
// -save FILE additionally persists the analyzed correlation state as a
// versioned result store artifact (internal/resultstore) once the analysis
// succeeds; iotserve -snapshot serves straight from it without re-analyzing.
//
// Usage:
//
//	iotinfer -data DIR [-json] [-workers N] [-sketch] [-lenient]
//	         [-shards N] [-shard-mem-mb MB]
//	         [-save store.irs] [-stage-report FILE|-]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"iotscope/internal/core"
	"iotscope/internal/pipeline"
	"iotscope/internal/profiling"
	"iotscope/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotinfer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotinfer", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset directory (required)")
		asJSON      = fs.Bool("json", false, "emit machine-readable JSON")
		workers     = fs.Int("workers", 0, "concurrent hour files (0 = GOMAXPROCS)")
		sketch      = fs.Bool("sketch", false, "use HyperLogLog destination counters")
		lenient     = fs.Bool("lenient", false, "quarantine unreadable hours instead of failing")
		shards      = fs.Int("shards", 0, "partition correlation into N source-prefix shards (power of two, 0/1 = off)")
		shardMemMB  = fs.Int("shard-mem-mb", 0, "per-shard memory ceiling in MiB (fail fast, no spill; 0 = unlimited)")
		save        = fs.String("save", "", "write the analyzed correlation state to this result store file")
		stageReport = fs.String("stage-report", "", "write per-stage pipeline metrics JSON to this file (- = stderr)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "iotinfer:", err)
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Workers = *workers
	cfg.UseSketches = *sketch
	cfg.Lenient = *lenient
	cfg.Shards = *shards
	if *shardMemMB < 0 {
		return fmt.Errorf("-shard-mem-mb must be >= 0")
	}
	cfg.ShardMemoryBudget = uint64(*shardMemMB) << 20
	// The analysis pipeline, with the optional save-store stage appended so
	// the artifact write is reported (and cancellable) like any other stage.
	res := &core.Results{}
	stages := ds.AnalysisStages(cfg, res)
	if *save != "" {
		stages = append(stages, core.SaveSnapshotStage(*save, res))
	}
	rep, err := pipeline.New("analyze", stages...).Run(ctx, nil)
	if emitErr := pipeline.EmitReport(rep, *stageReport); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}
	if *save != "" {
		fmt.Fprintf(os.Stderr, "iotinfer: saved result store %s\n", *save)
	}
	if *asJSON {
		out := map[string]any{
			"summary":          res.Summary,
			"statTests":        res.StatTests,
			"threatFlagged":    len(res.Threat.Flagged),
			"threatExplored":   res.Threat.Explored,
			"malwareHashes":    res.Malware.Hashes,
			"malwareFamilies":  res.Malware.Families,
			"malwareDomains":   len(res.Malware.Domains),
			"background":       res.Correlate.Background,
			"datasetScale":     ds.Scenario.Scale,
			"datasetSeed":      ds.Scenario.Seed,
			"datasetHours":     ds.Scenario.Hours,
			"inventoryDevices": ds.Inventory.Len(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	return report.Headline(os.Stdout, res)
}
