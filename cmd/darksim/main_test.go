package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"missing out", nil},
		{"unknown flag", []string{"-bogus"}},
		{"zero scale", []string{"-out", "x", "-scale", "0"}},
		{"negative scale", []string{"-out", "x", "-scale", "-0.5"}},
		{"scale above one", []string{"-out", "x", "-scale", "1.5"}},
		{"negative hours", []string{"-out", "x", "-hours", "-1"}},
		{"unknown scenario", []string{"-out", "x", "-scenario", "no-such-scenario"}},
		{"unknown scenario version", []string{"-out", "x", "-scenario", "paper-default@99"}},
		{"missing scenario file", []string{"-out", "x", "-scenario", "no/such/file.json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args, io.Discard); err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
		})
	}
}

func TestRunGeneratesDataset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-scale", "0.002", "-seed", "3", "-hours", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"scenario.json", "inventory.jsonl", "threat-events.jsonl",
		"malware-reports.xml", "malware-catalog.jsonl", "truth.json",
		"hour-000.ft.gz", "hour-003.ft.gz",
		"scenario-config.json", "run.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}

func TestRunScenarioByName(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-scenario", "stealth-scan@1",
		"-scale", "0.002", "-seed", "3", "-hours", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scenario=stealth-scan@1") {
		t.Errorf("output does not name the scenario:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "config hash:          sha256:") {
		t.Errorf("output does not report the config hash:\n%s", out.String())
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 8 {
		t.Fatalf("expected at least 8 bundled scenarios, got %d:\n%s", len(lines), out.String())
	}
	var sawDefault bool
	for _, l := range lines {
		fields := strings.SplitN(l, "\t", 3)
		if len(fields) != 3 {
			t.Errorf("line not ref<TAB>kinds<TAB>description: %q", l)
			continue
		}
		if fields[0] == "paper-default@1" {
			sawDefault = true
		}
	}
	if !sawDefault {
		t.Error("paper-default@1 not listed")
	}
}

func TestPrintConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-print-config", "paper-default"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"Name": "paper-default"`) {
		t.Errorf("canonical config missing name:\n%.400s", s)
	}
	if !strings.Contains(s, "# config hash: sha256:") {
		t.Error("hash trailer missing")
	}
}
