package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunGeneratesDataset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-scale", "0.002", "-seed", "3", "-hours", "4"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"scenario.json", "inventory.jsonl", "threat-events.jsonl",
		"malware-reports.xml", "malware-catalog.jsonl", "truth.json",
		"hour-000.ft.gz", "hour-003.ft.gz",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
