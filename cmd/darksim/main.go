// Command darksim synthesizes a complete telescope dataset: the hourly
// flowtuple capture, the IoT inventory, and the threat-intelligence and
// malware databases.
//
// Usage:
//
//	darksim -out DIR [-scale 0.02] [-seed 42] [-hours 143]
package main

import (
	"flag"
	"fmt"
	"os"

	"iotscope/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "darksim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("darksim", flag.ContinueOnError)
	var (
		out   = fs.String("out", "", "output dataset directory (required)")
		scale = fs.Float64("scale", 0.02, "population/volume scale (1.0 = paper magnitudes)")
		seed  = fs.Uint64("seed", 1, "master seed")
		hours = fs.Int("hours", 0, "override the 143-hour window (0 keeps it)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	cfg := core.DefaultConfig(*scale, *seed)
	cfg.Hours = *hours

	fmt.Printf("generating dataset: scale=%v seed=%d -> %s\n", *scale, *seed, *out)
	ds, err := core.Generate(cfg, *out)
	if err != nil {
		return err
	}
	st := ds.GenStats
	fmt.Printf("hours written:        %d\n", st.Collector.HoursWritten)
	fmt.Printf("packets captured:     %d\n", st.Collector.PacketsObserved)
	fmt.Printf("flowtuples persisted: %d\n", st.Collector.RecordsWritten)
	fmt.Printf("inventory devices:    %d\n", ds.Inventory.Len())
	fmt.Printf("compromised (truth):  %d\n", len(ds.Truth.Compromised))
	fmt.Printf("threat events:        %d over %d IPs\n", ds.Threat.Len(), ds.Threat.NumIPs())
	fmt.Printf("malware reports:      %d\n", ds.Malware.Len())
	return nil
}
