// Command darksim synthesizes a complete telescope dataset: the hourly
// flowtuple capture, the IoT inventory, and the threat-intelligence and
// malware databases. The workload comes from a declarative scenario — a
// bundled one by name, or an external JSON/TOML file — and every dataset is
// stamped with a run manifest recording its exact provenance.
//
// Usage:
//
//	darksim -out DIR [-scenario NAME|FILE] [-scale 0.02] [-seed 42] [-hours 0]
//	darksim -list-scenarios
//	darksim -print-config NAME|FILE
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"iotscope/internal/core"
	"iotscope/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "darksim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("darksim", flag.ContinueOnError)
	var (
		out     = fs.String("out", "", "output dataset directory (required)")
		scn     = fs.String("scenario", scenario.DefaultName, "bundled scenario name[@version], or a path to a .json/.toml scenario file")
		scale   = fs.Float64("scale", 0.02, "population/volume scale, in (0, 1] (1.0 = paper magnitudes)")
		seed    = fs.Uint64("seed", 1, "master seed")
		hours   = fs.Int("hours", 0, "override the scenario's hour window (0 keeps it)")
		list    = fs.Bool("list-scenarios", false, "list the bundled scenario library and exit")
		printCf = fs.String("print-config", "", "print a scenario's canonical config and hash, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return listScenarios(stdout)
	}
	if *printCf != "" {
		return printConfig(stdout, *printCf)
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale %v out of range (0, 1]", *scale)
	}
	if *hours < 0 {
		return fmt.Errorf("-hours %d must not be negative", *hours)
	}
	cfg := core.DefaultConfig(*scale, *seed)
	cfg.Hours = *hours

	rs, err := scenario.Resolve(*scn, scenario.Options{Scale: *scale, Seed: *seed, Hours: *hours})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "generating dataset: scenario=%s@%d scale=%v seed=%d hours=%d -> %s\n",
		rs.Config.Name, rs.Config.Version, *scale, *seed, rs.Scenario.Hours, *out)
	ds, err := core.GenerateScenario(cfg, rs, *out)
	if err != nil {
		return err
	}
	st := ds.GenStats
	fmt.Fprintf(stdout, "hours written:        %d\n", st.Collector.HoursWritten)
	fmt.Fprintf(stdout, "packets captured:     %d\n", st.Collector.PacketsObserved)
	fmt.Fprintf(stdout, "flowtuples persisted: %d\n", st.Collector.RecordsWritten)
	fmt.Fprintf(stdout, "inventory devices:    %d\n", ds.Inventory.Len())
	fmt.Fprintf(stdout, "compromised (truth):  %d\n", len(ds.Truth.Compromised))
	fmt.Fprintf(stdout, "threat events:        %d over %d IPs\n", ds.Threat.Len(), ds.Threat.NumIPs())
	fmt.Fprintf(stdout, "malware reports:      %d\n", ds.Malware.Len())
	fmt.Fprintf(stdout, "config hash:          %s\n", ds.Manifest.ConfigHash)
	return nil
}

// listScenarios prints one tab-separated line per bundled scenario:
// ref, composed actor kinds, description. The format is stable so scripts
// can cut -f1 it.
func listScenarios(w io.Writer) error {
	for _, m := range scenario.List() {
		fmt.Fprintf(w, "%s\t%s\t%s\n", m.Ref(), strings.Join(m.Kinds, ","), m.Description)
	}
	return nil
}

// printConfig resolves a scenario reference the same way -scenario does and
// prints its canonical JSON followed by the config hash.
func printConfig(w io.Writer, ref string) error {
	rs, err := scenario.Resolve(ref, scenario.Options{Scale: 1, Seed: 0})
	if err != nil {
		return err
	}
	canon, err := rs.Config.CanonicalJSON()
	if err != nil {
		return err
	}
	if _, err := w.Write(canon); err != nil {
		return err
	}
	fmt.Fprintf(w, "# config hash: %s\n", rs.ConfigHash)
	return nil
}
