// Command flowcat inspects flowtuple files: print records, summarize an
// hour, summarize a whole dataset, or integrity-check hour files.
//
// Usage:
//
//	flowcat -file hour-000.ft.gz [-n 20]     # head of one file
//	flowcat -data DIR [-hour 5]              # per-hour or dataset summary
//	flowcat -verify -data DIR                # per-file integrity verdicts
//	flowcat -verify -file hour-000.ft.gz     # one-file verdict
//
// -verify exits nonzero if any file is corrupt or truncated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
	"iotscope/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flowcat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowcat", flag.ContinueOnError)
	var (
		file    = fs.String("file", "", "one flowtuple file to dump")
		n       = fs.Int("n", 20, "records to print with -file (0 = all)")
		data    = fs.String("data", "", "dataset directory to summarize")
		hour    = fs.Int("hour", -1, "restrict -data summary to one hour")
		verify  = fs.Bool("verify", false, "integrity-check instead of printing records")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "flowcat:", err)
		}
	}()
	switch {
	case *verify && *file != "":
		return verifyFiles([]string{*file})
	case *verify && *data != "":
		return verifyDataset(*data)
	case *file != "":
		return dumpFile(*file, *n)
	case *data != "":
		return summarize(*data, *hour)
	default:
		return fmt.Errorf("need -file or -data")
	}
}

// verifyDataset integrity-checks every hour file in dir.
func verifyDataset(dir string) error {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return err
	}
	if len(hours) == 0 {
		return fmt.Errorf("no hourly files in %s", dir)
	}
	paths := make([]string, len(hours))
	for i, h := range hours {
		paths[i] = flowtuple.HourPath(dir, h)
	}
	return verifyFiles(paths)
}

// verifyFiles prints a per-file verdict and fails if any file is bad.
func verifyFiles(paths []string) error {
	bad := 0
	for _, path := range paths {
		hdr, err := flowtuple.Verify(path)
		switch {
		case errors.Is(err, flowtuple.ErrTruncated):
			bad++
			fmt.Printf("%s: TRUNCATED: %v\n", path, err)
		case err != nil:
			bad++
			fmt.Printf("%s: CORRUPT: %v\n", path, err)
		default:
			fmt.Printf("%s: ok (hour %d, %d records)\n", path, hdr.Hour, hdr.Count)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d files failed verification", bad, len(paths))
	}
	fmt.Printf("all %d files ok\n", len(paths))
	return nil
}

func dumpFile(path string, n int) error {
	rd, err := flowtuple.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	fmt.Printf("# hour %d\n", rd.Header().Hour)
	for i := 0; n == 0 || i < n; i++ {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s  [%s]\n", rec.String(), classify.Record(rec))
	}
	return nil
}

func summarize(dir string, only int) error {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return err
	}
	if len(hours) == 0 {
		return fmt.Errorf("no hourly files in %s", dir)
	}
	fmt.Printf("%-5s %10s %12s %8s %8s %8s %8s %8s\n",
		"hour", "records", "packets", "scanTCP", "scanICMP", "bscatter", "udp", "other")
	var totRecs, totPkts uint64
	for _, h := range hours {
		if only >= 0 && h != only {
			continue
		}
		var recs uint64
		var pkts [classify.NumClasses]uint64
		var total uint64
		err := flowtuple.WalkHourBatch(context.Background(), dir, h, func(batch []flowtuple.Record) error {
			recs += uint64(len(batch))
			for i := range batch {
				rec := &batch[i]
				total += uint64(rec.Packets)
				pkts[classify.Record(*rec).Index()] += uint64(rec.Packets)
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-5d %10d %12d %8d %8d %8d %8d %8d\n",
			h, recs, total,
			pkts[classify.ScanTCP.Index()], pkts[classify.ScanICMP.Index()],
			pkts[classify.Backscatter.Index()], pkts[classify.UDP.Index()],
			pkts[classify.Other.Index()])
		totRecs += recs
		totPkts += total
	}
	fmt.Printf("total %10d %12d\n", totRecs, totPkts)
	return nil
}
