// Command flowcat inspects flowtuple files: print records, summarize an
// hour, or summarize a whole dataset.
//
// Usage:
//
//	flowcat -file hour-000.ft.gz [-n 20]     # head of one file
//	flowcat -data DIR [-hour 5]              # per-hour or dataset summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flowcat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowcat", flag.ContinueOnError)
	var (
		file = fs.String("file", "", "one flowtuple file to dump")
		n    = fs.Int("n", 20, "records to print with -file (0 = all)")
		data = fs.String("data", "", "dataset directory to summarize")
		hour = fs.Int("hour", -1, "restrict -data summary to one hour")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *file != "":
		return dumpFile(*file, *n)
	case *data != "":
		return summarize(*data, *hour)
	default:
		return fmt.Errorf("need -file or -data")
	}
}

func dumpFile(path string, n int) error {
	rd, err := flowtuple.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	fmt.Printf("# hour %d\n", rd.Header().Hour)
	for i := 0; n == 0 || i < n; i++ {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s  [%s]\n", rec.String(), classify.Record(rec))
	}
	return nil
}

func summarize(dir string, only int) error {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return err
	}
	if len(hours) == 0 {
		return fmt.Errorf("no hourly files in %s", dir)
	}
	fmt.Printf("%-5s %10s %12s %8s %8s %8s %8s %8s\n",
		"hour", "records", "packets", "scanTCP", "scanICMP", "bscatter", "udp", "other")
	var totRecs, totPkts uint64
	for _, h := range hours {
		if only >= 0 && h != only {
			continue
		}
		var recs uint64
		var pkts [classify.NumClasses]uint64
		var total uint64
		err := flowtuple.WalkHour(dir, h, func(rec flowtuple.Record) error {
			recs++
			total += uint64(rec.Packets)
			pkts[classify.Record(rec).Index()] += uint64(rec.Packets)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-5d %10d %12d %8d %8d %8d %8d %8d\n",
			h, recs, total,
			pkts[classify.ScanTCP.Index()], pkts[classify.ScanICMP.Index()],
			pkts[classify.Backscatter.Index()], pkts[classify.UDP.Index()],
			pkts[classify.Other.Index()])
		totRecs += recs
		totPkts += total
	}
	fmt.Printf("total %10d %12d\n", totRecs, totPkts)
	return nil
}
