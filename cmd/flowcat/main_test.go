package main

import (
	"path/filepath"
	"testing"

	"iotscope/internal/core"
)

func testDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 3
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-file", "/nonexistent.ft.gz"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDumpFile(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-file", filepath.Join(dir, "hour-000.ft.gz"), "-n", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-hour", "1"}); err != nil {
		t.Fatal(err)
	}
}
