package main

import (
	"path/filepath"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/faultfs"
	"iotscope/internal/flowtuple"
)

func testDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 3
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-file", "/nonexistent.ft.gz"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDumpFile(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-file", filepath.Join(dir, "hour-000.ft.gz"), "-n", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-hour", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanDataset(t *testing.T) {
	dir := testDataset(t)
	if err := run([]string{"-verify", "-data", dir}); err != nil {
		t.Fatalf("clean dataset failed verification: %v", err)
	}
	if err := run([]string{"-verify", "-file", filepath.Join(dir, "hour-000.ft.gz")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-verify", "-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset verified clean")
	}
}

func TestVerifyFlagsDamage(t *testing.T) {
	dir := testDataset(t)
	// One corrupt hour, one truncated in-progress hour; hour 0 stays good.
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 1), 1, 0x04); err != nil {
		t.Fatal(err)
	}
	n, err := faultfs.UncompressedLen(flowtuple.HourPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(flowtuple.HourPath(dir, 2), n/2); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-verify", "-data", dir})
	if err == nil {
		t.Fatal("damaged dataset verified clean")
	}
	if got := err.Error(); got != "2 of 3 files failed verification" {
		t.Fatalf("verdict %q", got)
	}
	// Single-file mode flags the same damage.
	if err := run([]string{"-verify", "-file", flowtuple.HourPath(dir, 1)}); err == nil {
		t.Fatal("corrupt file verified clean")
	}
}
