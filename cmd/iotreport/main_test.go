package main

import (
	"testing"

	"iotscope/internal/core"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-data", t.TempDir()}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRunOnExistingDataset(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 6
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGenerate(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-generate", "-data", dir, "-scale", "0.002", "-seed", "3", "-hours", "4"})
	if err != nil {
		t.Fatal(err)
	}
}
