// Command iotreport regenerates every table and figure of the paper's
// evaluation from a dataset, or end-to-end with -generate.
//
// Usage:
//
//	iotreport -data DIR                 # analyze an existing dataset
//	iotreport -generate -scale 0.02     # synthesize into a temp dir first
//
// The analysis runs through the staged pipeline engine; -stage-report
// dumps the per-stage metrics and an interrupt cancels the run mid-stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"iotscope/internal/core"
	"iotscope/internal/pipeline"
	"iotscope/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotreport", flag.ContinueOnError)
	var (
		data     = fs.String("data", "", "dataset directory")
		generate = fs.Bool("generate", false, "synthesize a dataset first")
		scale    = fs.Float64("scale", 0.02, "scale when generating")
		seed     = fs.Uint64("seed", 1, "seed when generating")
		hours    = fs.Int("hours", 0, "window override when generating")
		workers  = fs.Int("workers", 0, "concurrent hour files (0 = GOMAXPROCS)")
		stageRep = fs.String("stage-report", "", "write per-stage pipeline metrics JSON to this file (- = stderr)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *core.Dataset
	var err error
	switch {
	case *generate:
		dir := *data
		if dir == "" {
			dir, err = os.MkdirTemp("", "iotscope-dataset-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		cfg := core.DefaultConfig(*scale, *seed)
		cfg.Hours = *hours
		fmt.Fprintf(os.Stderr, "generating dataset at scale %v into %s ...\n", *scale, dir)
		ds, err = core.Generate(cfg, dir)
	case *data != "":
		ds, err = core.Open(*data)
	default:
		return fmt.Errorf("need -data DIR or -generate")
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Workers = *workers
	fmt.Fprintf(os.Stderr, "analyzing %d hours ...\n", ds.Scenario.Hours)
	res, rep, err := ds.AnalyzeStaged(ctx, cfg)
	if emitErr := pipeline.EmitReport(rep, *stageRep); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}
	fmt.Printf("iotscope paper reproduction — scale %v, seed %d, %d hours\n\n",
		ds.Scenario.Scale, ds.Scenario.Seed, ds.Scenario.Hours)
	return report.WriteAll(os.Stdout, res, ds)
}
