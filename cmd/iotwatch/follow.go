package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/pipeline"
	"iotscope/internal/stream"
)

// alertLogFile is the default alert journal name inside -checkpoint-dir.
const alertLogFile = "alerts.jsonl"

type followOpts struct {
	ckptDir     string
	alertLog    string
	addr        string
	stageReport string
	poll        time.Duration
	backoff     time.Duration
	drain       bool
	alarm       float64
	lateness    int
	retries     int
}

// runFollow runs the streaming collector as the watch stage. The collector
// owns windowing, sealing, alert emission, and checkpointing; this wrapper
// wires its alert hub to stdout, the journal, and (optionally) an HTTP
// listener, and reports stage metrics when it stops.
func runFollow(ds *core.Dataset, cfg core.Config, o followOpts) error {
	if o.ckptDir != "" {
		if err := os.MkdirAll(o.ckptDir, 0o755); err != nil {
			return err
		}
		if o.alertLog == "" {
			o.alertLog = filepath.Join(o.ckptDir, alertLogFile)
		}
	}
	var ckptPath string
	if o.ckptDir != "" {
		ckptPath = filepath.Join(o.ckptDir, checkpointFile)
	}
	var alog *stream.AlertLog
	if o.alertLog != "" {
		var err error
		if alog, err = stream.OpenAlertLog(o.alertLog); err != nil {
			return err
		}
		defer alog.Close()
	}
	hub := stream.NewHub(alog)

	// The opener re-reads the checkpoint on every ingest-loop start, so a
	// supervisor restart resumes from whatever the crashed loop persisted.
	opener := func() (*correlate.Incremental, error) {
		inc, _, err := openIncremental(ds, cfg, o.ckptDir)
		return inc, err
	}
	// stream treats 0 as "use the default threshold"; the CLI contract is
	// that -alarm 0 disables, which stream spells as negative.
	dosAlarm := o.alarm
	if dosAlarm == 0 {
		dosAlarm = -1
	}
	col, err := stream.New(stream.Config{
		Dir:            ds.Dir,
		CheckpointPath: ckptPath,
		Poll:           o.poll,
		Lateness:       o.lateness,
		DoSAlarm:       dosAlarm,
		Campaigns:      true,
		Drain:          o.drain,
		Supervisor: pipeline.RetryPolicy{
			MaxRetries:  o.retries,
			BaseBackoff: o.backoff,
		},
	}, opener, hub)
	if err != nil {
		return err
	}

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()

	ch, unsub := hub.Subscribe(256)
	defer unsub()
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for a := range ch {
			printAlert(a)
		}
	}()

	if o.addr != "" {
		ln, err := net.Listen("tcp", o.addr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /alerts", hub.ServeList)
		mux.HandleFunc("GET /alerts/stream", hub.ServeStream)
		hsrv := &http.Server{Handler: mux}
		// Close, not Shutdown: SSE streams are open-ended and would hold a
		// graceful drain forever.
		defer hsrv.Close()
		go hsrv.Serve(ln)
		fmt.Fprintf(os.Stderr, "iotwatch: serving alerts on http://%s/alerts\n", ln.Addr())
	}

	rep, err := pipeline.New("follow",
		pipeline.Func("stream-ingest", func(ctx context.Context, st *pipeline.State) error {
			err := col.Run(ctx)
			s := col.Stats()
			m := pipeline.Meter(ctx)
			m.RecordsIn = s.RecordsIngested
			m.RecordsOut = s.AlertsEmitted
			m.Retries = s.Restarts
			m.QuarantinedHours = s.HoursQuarantined
			return err
		}),
	).Run(ctx, nil)
	unsub()
	<-printed
	followSummary(col.Stats())
	if emitErr := pipeline.EmitReport(rep, o.stageReport); emitErr != nil && err == nil {
		err = emitErr
	}
	return err
}

func printAlert(a stream.Alert) {
	switch a.Kind {
	case stream.KindNewDevice:
		fmt.Printf("[hour %3d] ALERT new-device: device %d\n", a.Hour, a.Device)
	case stream.KindDoSSpike:
		fmt.Printf("[hour %3d] ALERT dos-spike: backscatter %d (%.1fx median)\n", a.Hour, a.Packets, a.Ratio)
	case stream.KindNewCampaign:
		fmt.Printf("[hour %3d] ALERT new-campaign: %d devices on ports %v (%d pkts)\n",
			a.Hour, len(a.Devices), a.Ports, a.Packets)
	default:
		fmt.Printf("[hour %3d] ALERT %s: %s\n", a.Hour, a.Kind, a.Key)
	}
}

func followSummary(s stream.Stats) {
	fmt.Printf("followed to hour %d (watermark %d): %d windows sealed (%d partial), %d records in %d batches, %d quarantined\n",
		s.MaxHour, s.Watermark, s.WindowsSealed, s.WindowsPartial,
		s.RecordsIngested, s.BatchesIngested, s.HoursQuarantined)
	fmt.Printf("    alerts: %d emitted, %d suppressed as duplicates; late: %d hours, %d records (%d dropped); shed: %d batches; restarts: %d; checkpoints: %d written, %d failed\n",
		s.AlertsEmitted, s.AlertsSuppressed, s.LateHours, s.LateRecords, s.LateDropped,
		s.ShedBatches, s.Restarts, s.CheckpointWrites, s.CheckpointFailures)
}
