// Command iotwatch tails a dataset directory and indexes newly arriving
// hourly flowtuple files in near real time — the operational capability the
// paper's Discussion proposes. Each new hour prints the newly discovered
// compromised devices and a one-line traffic summary; an optional DoS alarm
// fires when an hour's backscatter exceeds a multiple of the running
// median.
//
// Usage:
//
//	iotwatch -data DIR [-poll 2s] [-once] [-alarm 8]
//
// With -once the watcher ingests whatever is present and exits (useful for
// scripting and tests); otherwise it polls until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotwatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotwatch", flag.ContinueOnError)
	var (
		data  = fs.String("data", "", "dataset directory (required)")
		poll  = fs.Duration("poll", 2*time.Second, "directory poll interval")
		once  = fs.Bool("once", false, "ingest what is present, then exit")
		alarm = fs.Float64("alarm", 8, "DoS alarm threshold (x median backscatter hour; 0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	c := correlate.New(ds.Inventory, correlate.Options{})
	maxHours := ds.Scenario.Hours
	if maxHours <= 0 {
		maxHours = 24 * 365
	}
	inc, err := c.NewIncremental(maxHours)
	if err != nil {
		return err
	}

	w := &watcher{ds: ds, inc: inc, alarm: *alarm, ingested: make(map[int]bool)}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	for {
		n, err := w.sweep()
		if err != nil {
			return err
		}
		if *once {
			if n == 0 {
				w.summary()
				return nil
			}
			continue
		}
		select {
		case <-interrupt:
			fmt.Println()
			w.summary()
			return nil
		case <-time.After(*poll):
		}
	}
}

type watcher struct {
	ds       *core.Dataset
	inc      *correlate.Incremental
	alarm    float64
	ingested map[int]bool
	bsHours  []float64
}

// sweep ingests any hour files not yet seen, in order, returning how many
// were processed.
func (w *watcher) sweep() (int, error) {
	hours, err := flowtuple.DatasetHours(w.ds.Dir)
	if err != nil {
		return 0, err
	}
	processed := 0
	for _, h := range hours {
		if w.ingested[h] {
			continue
		}
		fresh, err := w.inc.Ingest(w.ds.Dir, h)
		if err != nil {
			return processed, err
		}
		w.ingested[h] = true
		processed++
		w.report(h, fresh)
	}
	return processed, nil
}

func (w *watcher) report(hour int, fresh []int) {
	res := w.inc.Result()
	hs := res.Hourly[hour]
	var pkts, bs uint64
	for ci := range hs.PerCat {
		for _, v := range hs.PerCat[ci].Packets {
			pkts += v
		}
		bs += hs.PerCat[ci].Packets[classify.Backscatter.Index()]
	}
	fmt.Printf("[hour %3d] %8d IoT pkts, %5d backscatter, %3d new devices (total %d)\n",
		hour, pkts, bs, len(fresh), len(res.Devices))
	for _, id := range fresh {
		d := w.ds.Inventory.At(id)
		tag := d.Type.String()
		if d.Category == devicedb.CPS && len(d.Services) > 0 {
			tag = d.Services[0]
		}
		fmt.Printf("    new: device %d (%s, %s, %s)\n", id, d.Category, tag, d.Country)
	}
	// DoS alarm against the running median of positive backscatter hours.
	if w.alarm > 0 && bs > 0 {
		if med := median(w.bsHours); med > 0 && float64(bs) > w.alarm*med {
			top, share := dominantVictim(res, hour)
			d := w.ds.Inventory.At(top)
			fmt.Printf("    ALARM: backscatter %d = %.1fx median; dominant victim device %d (%s in %s, %.0f%% of hour)\n",
				bs, float64(bs)/med, top, d.Category, d.Country, 100*share)
		}
		w.bsHours = append(w.bsHours, float64(bs))
	}
}

func (w *watcher) summary() {
	res := w.inc.Result()
	fmt.Printf("watched %d hours: %d devices inferred, %s IoT packets, %d background sources\n",
		w.inc.HoursIngested(), len(res.Devices),
		fmt.Sprint(res.TotalIoTPackets()), res.Background.Sources)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	dup := append([]float64(nil), xs...)
	sort.Float64s(dup)
	return dup[len(dup)/2]
}

// dominantVictim finds the device with the most backscatter in the hour.
func dominantVictim(res *correlate.Result, hour int) (int, float64) {
	var bestID int
	var bestPkts, total uint64
	for id, ds := range res.Devices {
		v := ds.BackscatterHourly[hour]
		total += v
		if v > bestPkts || (v == bestPkts && v > 0 && id < bestID) {
			bestID, bestPkts = id, v
		}
	}
	if total == 0 {
		return 0, 0
	}
	return bestID, float64(bestPkts) / float64(total)
}
