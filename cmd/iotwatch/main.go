// Command iotwatch tails a dataset directory and indexes newly arriving
// hourly flowtuple files in near real time — the operational capability the
// paper's Discussion proposes. Each new hour prints the newly discovered
// compromised devices and a one-line traffic summary; an optional DoS alarm
// fires when an hour's backscatter exceeds a multiple of the running
// median.
//
// Ingestion is fault tolerant: an hour file that ends early (a non-atomic
// producer may still be writing it) is retried with exponential backoff up
// to -retries attempts before being quarantined; structurally corrupt
// hours are quarantined immediately. Neither ever aborts the watch, and
// the summary line reports the retried and quarantined counts. The
// retry/backoff budget is a pipeline.RetryPolicy and the correlator comes
// from the shared core pipeline config (Config.Lenient), so batch and
// watch modes cannot drift.
//
// With -checkpoint-dir the watcher persists its incremental state as a
// result store checkpoint (internal/resultstore) after every ingested or
// quarantined hour, and resumes from it at startup: a killed watcher
// restarts exactly where it stopped, re-reading nothing, and converges on
// the same state an uninterrupted run would have reached. An unreadable or
// mismatched checkpoint warns and cold-starts; a checkpoint write failure
// warns and keeps watching.
//
// With -follow the watcher switches to the streaming collector
// (internal/stream): record batches flow into event-time windows as files
// grow — no waiting for hour boundaries — sealed by a low-watermark
// (-lateness hours behind the newest hour seen). Sealed windows emit
// low-latency alerts (new compromised devices, DoS spikes, new campaigns)
// to stdout, to a crash-safe journal (-alert-log, defaulting next to the
// checkpoint), and optionally over HTTP (-alerts-addr: long-poll /alerts,
// SSE /alerts/stream). Alerts are exactly-once across kill-and-restart:
// the journal dedups by key and each sealed window checkpoints before the
// watcher moves on. A crashed ingest loop is restarted under the same
// retry policy, resuming from the checkpoint.
//
// Usage:
//
//	iotwatch -data DIR [-poll 2s] [-once] [-alarm 8] [-retries 3] [-backoff 500ms]
//	         [-checkpoint-dir DIR] [-stage-report FILE|-]
//	         [-follow] [-lateness 1] [-alert-log FILE] [-alerts-addr HOST:PORT]
//
// With -once the watcher ingests whatever is present (including retry
// resolution) and exits (useful for scripting and tests); otherwise it
// polls until interrupted. In -follow mode -once drains: the collector
// exits once a full sweep finds nothing new, force-sealing open windows.
// Either way the watch runs as a stage of the pipeline engine: an
// interrupt cancels the ingest loop at the next hour boundary, prints the
// summary, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotwatch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotwatch", flag.ContinueOnError)
	var (
		data        = fs.String("data", "", "dataset directory (required)")
		poll        = fs.Duration("poll", 2*time.Second, "directory poll interval")
		once        = fs.Bool("once", false, "ingest what is present, then exit")
		alarm       = fs.Float64("alarm", 8, "DoS alarm threshold (x median backscatter hour; 0 disables)")
		retries     = fs.Int("retries", 3, "retry budget per truncated hour before quarantine")
		backoff     = fs.Duration("backoff", 500*time.Millisecond, "base retry backoff (doubles per attempt)")
		ckptDir     = fs.String("checkpoint-dir", "", "persist incremental state here after every hour and resume from it at startup")
		stageReport = fs.String("stage-report", "", "write per-stage pipeline metrics JSON to this file (- = stderr)")
		follow      = fs.Bool("follow", false, "stream record batches as files grow (windowed ingest with watermarks and live alerts)")
		lateness    = fs.Int("lateness", 1, "watermark lateness in hours for -follow windows")
		alertLog    = fs.String("alert-log", "", "alert journal path for -follow (default <checkpoint-dir>/alerts.jsonl)")
		alertsAddr  = fs.String("alerts-addr", "", "serve -follow alerts over HTTP on this address (long-poll /alerts, SSE /alerts/stream)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("-data is required")
	}
	if *retries < 0 || *backoff < 0 {
		return fmt.Errorf("-retries and -backoff must be non-negative")
	}
	if *lateness < 0 {
		return fmt.Errorf("-lateness must be non-negative")
	}
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Lenient = true
	if *follow {
		return runFollow(ds, cfg, followOpts{
			ckptDir:     *ckptDir,
			alertLog:    *alertLog,
			addr:        *alertsAddr,
			stageReport: *stageReport,
			poll:        *poll,
			backoff:     *backoff,
			drain:       *once,
			alarm:       *alarm,
			lateness:    *lateness,
			retries:     *retries,
		})
	}
	inc, ckptPath, err := openIncremental(ds, cfg, *ckptDir)
	if err != nil {
		return err
	}

	w := &watcher{
		dir: ds.Dir, inv: ds.Inventory, inc: inc,
		alarm:    *alarm,
		ckptPath: ckptPath,
		policy: pipeline.RetryPolicy{
			MaxRetries:  *retries,
			BaseBackoff: *backoff,
			Retryable:   correlate.IsRetryable,
		},
		ingested: make(map[int]bool),
		attempts: make(map[int]int),
		nextTry:  make(map[int]time.Time),
	}
	// A resumed watcher must not re-ingest hours the checkpoint already
	// holds — re-ingestion would double-count and Incremental rejects it.
	for _, h := range inc.IngestedHours() {
		w.ingested[h] = true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := pipeline.New("watch",
		pipeline.Func("watch-ingest", func(ctx context.Context, st *pipeline.State) error {
			return w.watch(ctx, *once, *poll)
		}),
	).Run(ctx, nil)
	if emitErr := pipeline.EmitReport(rep, *stageReport); emitErr != nil && err == nil {
		err = emitErr
	}
	return err
}

// checkpointFile is the artifact name inside -checkpoint-dir.
const checkpointFile = "checkpoint.irs"

// openIncremental builds the incremental correlator, resuming from a
// checkpoint when one is configured and usable. Resume failures are never
// fatal: an absent file is a first run, an unreadable or mismatched one
// warns and cold-starts — the watch must come up either way.
func openIncremental(ds *core.Dataset, cfg core.Config, dir string) (*correlate.Incremental, string, error) {
	if dir == "" {
		inc, err := ds.NewIncremental(cfg)
		return inc, "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", err
	}
	path := filepath.Join(dir, checkpointFile)
	cp, err := resultstore.ReadCheckpoint(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "iotwatch: checkpoint unusable, cold start: %v\n", err)
		}
		inc, err := ds.NewIncremental(cfg)
		return inc, path, err
	}
	inc, err := ds.RestoreIncremental(cfg, cp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotwatch: checkpoint rejected, cold start: %v\n", err)
		inc, err := ds.NewIncremental(cfg)
		return inc, path, err
	}
	fmt.Fprintf(os.Stderr, "iotwatch: resumed from %s (%d hours ingested, %d quarantined)\n",
		path, inc.HoursIngested(), inc.Stats().HoursQuarantined)
	return inc, path, nil
}

type watcher struct {
	dir      string
	inv      *devicedb.Inventory
	inc      *correlate.Incremental
	alarm    float64
	ckptPath string
	policy   pipeline.RetryPolicy

	ingested map[int]bool
	attempts map[int]int
	nextTry  map[int]time.Time
	bsHours  []float64
}

// watch is the pipeline stage: sweep the directory for new hours until
// interrupted (or, with once, until nothing is pending). An interrupt is a
// normal shutdown — the summary prints and the stage completes cleanly —
// so the engine only reports failure for real ingest errors.
func (w *watcher) watch(ctx context.Context, once bool, poll time.Duration) error {
	defer w.meter(ctx)
	for {
		n, err := w.sweep(ctx)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Println()
				w.summary()
				return nil
			}
			return err
		}
		if once {
			if n == 0 {
				wait, pending := w.nextRetryWait()
				if !pending {
					w.summary()
					return nil
				}
				if err := pipeline.Sleep(ctx, wait); err != nil {
					fmt.Println()
					w.summary()
					return nil
				}
			}
			continue
		}
		if err := pipeline.Sleep(ctx, poll); err != nil {
			fmt.Println()
			w.summary()
			return nil
		}
	}
}

// meter records the watch workload in the stage's metrics.
func (w *watcher) meter(ctx context.Context) {
	res := w.inc.Result()
	st := w.inc.Stats()
	m := pipeline.Meter(ctx)
	var iot uint64
	for i := range res.Hourly {
		iot += res.Hourly[i].RecordsIoT
	}
	m.RecordsIn = res.Background.Records + iot
	m.RecordsOut = uint64(len(res.Devices))
	m.Retries = st.HoursRetried
	m.QuarantinedHours = st.HoursQuarantined
}

// sweep ingests any hour files not yet seen, in order, returning how many
// were processed. Retryable failures leave the hour pending (with the
// policy's exponential backoff); exhausted or permanent failures
// quarantine it. Either way the sweep keeps going: a bad hour never aborts
// the watch. Cancellation stops the sweep at the next hour boundary.
func (w *watcher) sweep(ctx context.Context) (int, error) {
	hours, err := flowtuple.DatasetHours(w.dir)
	if err != nil {
		return 0, err
	}
	processed := 0
	now := time.Now()
	for _, h := range hours {
		if w.ingested[h] || w.inc.Quarantined(h) {
			continue
		}
		if t, ok := w.nextTry[h]; ok && now.Before(t) {
			continue
		}
		fresh, err := w.inc.Ingest(ctx, w.dir, h)
		if err != nil {
			if ctx.Err() != nil {
				return processed, err
			}
			if w.policy.ShouldRetry(err, w.attempts[h]) {
				w.attempts[h]++
				delay := w.policy.JitteredDelay(w.attempts[h])
				w.nextTry[h] = now.Add(delay)
				fmt.Printf("[hour %3d] incomplete, retry %d/%d in %s: %v\n",
					h, w.attempts[h], w.policy.MaxRetries, delay, err)
				continue
			}
			w.inc.Quarantine(h, err)
			delete(w.nextTry, h)
			fmt.Printf("[hour %3d] QUARANTINED after %d attempts: %v\n", h, w.attempts[h]+1, err)
			w.checkpoint()
			continue
		}
		w.ingested[h] = true
		delete(w.nextTry, h)
		processed++
		w.report(h, fresh)
		w.checkpoint()
	}
	return processed, nil
}

// checkpoint persists the incremental state (atomic write, see
// resultstore). The quarantine decision is checkpointed too: a resumed
// watcher must not burn a fresh retry budget on an hour already given up
// on. A write failure warns but never aborts the watch — losing a
// checkpoint costs a re-ingest after a crash, aborting costs the watch.
func (w *watcher) checkpoint() {
	if w.ckptPath == "" {
		return
	}
	if err := resultstore.WriteCheckpoint(w.ckptPath, w.inc.Export()); err != nil {
		fmt.Fprintf(os.Stderr, "iotwatch: checkpoint write failed: %v\n", err)
	}
}

// nextRetryWait returns how long until the earliest pending retry is due,
// and whether any hour is still awaiting one.
func (w *watcher) nextRetryWait() (time.Duration, bool) {
	var earliest time.Time
	for h, t := range w.nextTry {
		if w.ingested[h] || w.inc.Quarantined(h) {
			continue
		}
		if earliest.IsZero() || t.Before(earliest) {
			earliest = t
		}
	}
	if earliest.IsZero() {
		return 0, false
	}
	wait := time.Until(earliest)
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, true
}

func (w *watcher) report(hour int, fresh []int) {
	res := w.inc.Result()
	hs := res.Hourly[hour]
	var pkts, bs uint64
	for ci := range hs.PerCat {
		for _, v := range hs.PerCat[ci].Packets {
			pkts += v
		}
		bs += hs.PerCat[ci].Packets[classify.Backscatter.Index()]
	}
	fmt.Printf("[hour %3d] %8d IoT pkts, %5d backscatter, %3d new devices (total %d)\n",
		hour, pkts, bs, len(fresh), len(res.Devices))
	for _, id := range fresh {
		d := w.inv.At(id)
		tag := d.Type.String()
		if d.Category == devicedb.CPS && len(d.Services) > 0 {
			tag = d.Services[0]
		}
		fmt.Printf("    new: device %d (%s, %s, %s)\n", id, d.Category, tag, d.Country)
	}
	// DoS alarm against the running median of positive backscatter hours.
	if w.alarm > 0 && bs > 0 {
		if med := median(w.bsHours); med > 0 && float64(bs) > w.alarm*med {
			if top, share := dominantVictim(res, hour); top >= 0 {
				d := w.inv.At(top)
				fmt.Printf("    ALARM: backscatter %d = %.1fx median; dominant victim device %d (%s in %s, %.0f%% of hour)\n",
					bs, float64(bs)/med, top, d.Category, d.Country, 100*share)
			}
		}
		w.bsHours = append(w.bsHours, float64(bs))
	}
}

func (w *watcher) summary() {
	res := w.inc.Result()
	st := w.inc.Stats()
	fmt.Printf("watched %d hours: %d devices inferred, %s IoT packets, %d background sources (%d retried, %d quarantined)\n",
		w.inc.HoursIngested(), len(res.Devices),
		fmt.Sprint(res.TotalIoTPackets()), res.Background.Sources,
		st.HoursRetried, st.HoursQuarantined)
	for _, f := range st.Faults {
		fmt.Printf("    quarantined hour %d: %v\n", f.Hour, f.Err)
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	dup := append([]float64(nil), xs...)
	sort.Float64s(dup)
	return dup[len(dup)/2]
}

// dominantVictim finds the device with the most backscatter in the hour.
// Ties break to the lowest device ID, and the sentinel -1 (never a valid
// ID) is returned when no device has backscatter, so a device that merely
// sorts first can never be misreported as the victim.
func dominantVictim(res *correlate.Result, hour int) (int, float64) {
	bestID := -1
	var bestPkts, total uint64
	for id, ds := range res.Devices {
		v := ds.BackscatterHourly[hour]
		total += v
		if v == 0 {
			continue
		}
		if v > bestPkts || (v == bestPkts && id < bestID) {
			bestID, bestPkts = id, v
		}
	}
	if total == 0 {
		return -1, 0
	}
	return bestID, float64(bestPkts) / float64(total)
}
