package main

import (
	"testing"

	"iotscope/internal/core"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", t.TempDir(), "-once"}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRunOnce(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 5
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-once"}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianAndDominantVictim(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median")
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median %v", got)
	}
}
