package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/faultfs"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -data accepted")
	}
	if err := run([]string{"-data", t.TempDir(), "-once"}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := run([]string{"-data", t.TempDir(), "-retries", "-1"}); err == nil {
		t.Fatal("negative retries accepted")
	}
}

func TestRunOnce(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 3)
	cfg.Hours = 5
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-once"}); err != nil {
		t.Fatal(err)
	}
}

// Damaged datasets must not abort a -once run either: bad hours are
// quarantined (after the retry budget) and the run still exits cleanly.
func TestRunOnceDamagedDataset(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(0.002, 4)
	cfg.Hours = 5
	if _, err := core.Generate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 1), 1, 0x08); err != nil {
		t.Fatal(err)
	}
	n, err := faultfs.UncompressedLen(flowtuple.HourPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(flowtuple.HourPath(dir, 3), n/2); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-once", "-retries", "2", "-backoff", "1ms"}); err != nil {
		t.Fatalf("damaged dataset aborted the watch: %v", err)
	}
}

// testInventory returns a one-device inventory and that device's IP.
func testInventory(t *testing.T) (*devicedb.Inventory, netx.Addr) {
	t.Helper()
	ip := netx.MustParseAddr("1.2.3.4")
	inv, err := devicedb.NewInventory([]devicedb.Device{
		{ID: 0, IP: ip, Category: devicedb.Consumer, Type: devicedb.TypeRouter, Country: "RU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inv, ip
}

func scanRecord(src netx.Addr, n int) flowtuple.Record {
	return flowtuple.Record{
		SrcIP: uint32(src), DstIP: 0x2C000000 + uint32(n),
		SrcPort: 4000, DstPort: 23,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN, Packets: 1,
	}
}

func writeHour(t *testing.T, dir string, hour int, src netx.Addr, recs int) {
	t.Helper()
	w, err := flowtuple.Create(flowtuple.HourPath(dir, hour), uint32(hour))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < recs; i++ {
		if err := w.Write(scanRecord(src, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func newTestWatcher(t *testing.T, dir string, inv *devicedb.Inventory, retries int) *watcher {
	t.Helper()
	ds := &core.Dataset{Inventory: inv}
	ds.Scenario.Hours = 24
	inc, err := ds.NewIncremental(core.Config{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	return &watcher{
		dir: dir, inv: inv, inc: inc,
		policy: pipeline.RetryPolicy{
			MaxRetries:  retries,
			BaseBackoff: time.Millisecond,
			Retryable:   correlate.IsRetryable,
		},
		ingested: make(map[int]bool),
		attempts: make(map[int]int),
		nextTry:  make(map[int]time.Time),
	}
}

func TestSweepQuarantinesAndContinues(t *testing.T) {
	dir := t.TempDir()
	inv, ip := testInventory(t)
	writeHour(t, dir, 0, ip, 3)
	writeHour(t, dir, 1, ip, 2)
	writeHour(t, dir, 2, ip, 4)
	writeHour(t, dir, 3, ip, 4)
	// Hour 2: permanent corruption. Hour 3: in-progress truncation.
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 2), 1, 0x20); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(flowtuple.HourPath(dir, 3), 16+22); err != nil {
		t.Fatal(err)
	}

	w := newTestWatcher(t, dir, inv, 2)
	n, err := w.sweep(context.Background())
	if err != nil {
		t.Fatalf("sweep over damaged dir errored: %v", err)
	}
	if n != 2 {
		t.Fatalf("processed %d hours, want 2 healthy", n)
	}
	if !w.inc.Quarantined(2) {
		t.Fatal("corrupt hour not quarantined on first sight")
	}
	if w.inc.Quarantined(3) {
		t.Fatal("truncated hour quarantined before retry budget spent")
	}
	// Burn the retry budget; the truncated file never completes.
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		if _, err := w.sweep(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if !w.inc.Quarantined(3) {
		t.Fatal("truncated hour not quarantined after retries exhausted")
	}
	st := w.inc.Stats()
	if st.HoursOK != 2 || st.HoursQuarantined != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Faults[1].Attempts != 3 { // 1 initial + 2 retries
		t.Fatalf("hour 3 attempts %d", st.Faults[1].Attempts)
	}
}

func TestSweepRetryResolves(t *testing.T) {
	dir := t.TempDir()
	inv, ip := testInventory(t)
	writeHour(t, dir, 0, ip, 5)
	path := flowtuple.HourPath(dir, 0)
	complete, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(path, 16+2*22); err != nil {
		t.Fatal(err)
	}

	w := newTestWatcher(t, dir, inv, 3)
	if n, err := w.sweep(context.Background()); err != nil || n != 0 {
		t.Fatalf("sweep = %d, %v", n, err)
	}
	// The producer finishes the hour; the retry picks it up.
	if err := os.WriteFile(path, complete, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !w.ingested[0] {
		if time.Now().After(deadline) {
			t.Fatal("retry never resolved")
		}
		time.Sleep(2 * time.Millisecond)
		if _, err := w.sweep(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st := w.inc.Stats()
	if st.HoursOK != 1 || st.HoursRetried != 1 || st.HoursQuarantined != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := w.inc.Result().Devices[0].Records; got != 5 {
		t.Fatalf("records after retry %d", got)
	}
}

// A watcher polling a directory while the atomic writer publishes hours
// concurrently must never observe a partial file: no retries, no
// quarantines, every hour ingested exactly once.
func TestSweepAgainstConcurrentAtomicWriter(t *testing.T) {
	dir := t.TempDir()
	inv, ip := testInventory(t)
	const hours, recsPerHour = 5, 50

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for h := 0; h < hours; h++ {
			w, err := flowtuple.Create(flowtuple.HourPath(dir, h), uint32(h))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < recsPerHour; i++ {
				if err := w.Write(scanRecord(ip, i)); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					time.Sleep(time.Millisecond) // keep the file in flight
				}
			}
			if err := w.Close(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	w := newTestWatcher(t, dir, inv, 3)
	deadline := time.Now().Add(15 * time.Second)
	for len(w.ingested) < hours {
		if time.Now().After(deadline) {
			t.Fatalf("ingested only %d/%d hours", len(w.ingested), hours)
		}
		if _, err := w.sweep(context.Background()); err != nil {
			t.Fatalf("sweep errored mid-write: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	st := w.inc.Stats()
	if st.HoursOK != hours || st.HoursRetried != 0 || st.HoursQuarantined != 0 || len(st.Faults) != 0 {
		t.Fatalf("atomic writer leaked partial state to the watcher: %+v", st)
	}
	if got := w.inc.Result().Devices[0].Records; got != hours*recsPerHour {
		t.Fatalf("records %d, want %d", got, hours*recsPerHour)
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median")
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median %v", got)
	}
}

func TestDominantVictim(t *testing.T) {
	mk := func(bs map[int]uint64) *correlate.Result {
		res := &correlate.Result{Devices: make(map[int]*correlate.DeviceStats)}
		for id, v := range bs {
			ds := &correlate.DeviceStats{ID: id}
			if v > 0 {
				ds.BackscatterHourly = map[int]uint64{7: v}
			}
			res.Devices[id] = ds
		}
		return res
	}
	cases := []struct {
		name      string
		bs        map[int]uint64
		wantID    int
		wantShare float64
	}{
		{"no backscatter", map[int]uint64{0: 0, 3: 0}, -1, 0},
		{"empty", nil, -1, 0},
		{"tie breaks to lowest id", map[int]uint64{5: 10, 3: 10}, 3, 0.5},
		// Device 0 present with zero packets must never shadow the real
		// victim, whatever the map iteration order.
		{"zero-packet device 0", map[int]uint64{0: 0, 2: 7}, 2, 1.0},
		{"device 0 as true victim", map[int]uint64{0: 9, 4: 1}, 0, 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 20; i++ { // map order shuffles across runs
				id, share := dominantVictim(mk(tc.bs), 7)
				if id != tc.wantID || share != tc.wantShare {
					t.Fatalf("dominantVictim = (%d, %v), want (%d, %v)",
						id, share, tc.wantID, tc.wantShare)
				}
			}
		})
	}
}

// The restart-safety contract end to end: a watcher checkpointing per hour
// is killed mid-dataset (no shutdown path of any kind runs — the per-hour
// checkpoint is the only state that survives), two held-back hours land
// while it is down, and a restarted watcher resumes from the checkpoint,
// ingests the late hours out of order, and converges on state
// byte-identical to a cold batch run over the complete dataset — down to
// the abuse notification bundles derived from it.
func TestCheckpointKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	gcfg := core.DefaultConfig(0.002, 77)
	gcfg.Hours = 6
	if _, err := core.Generate(gcfg, dir); err != nil {
		t.Fatal(err)
	}
	// Hold back hours 3 and 4: they arrive only after the restart, so the
	// resumed watcher must accept out-of-order hours (5 is already in).
	held := map[int][]byte{}
	for _, h := range []int{3, 4} {
		p := flowtuple.HourPath(dir, h)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		held[h] = b
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	ds, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	wcfg.Lenient = true
	ckpt := t.TempDir()

	// Phase 1: ingest what is present, checkpointing after every hour.
	inc1, path, err := openIncremental(ds, wcfg, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	w1 := newTestWatcher(t, dir, ds.Inventory, 1)
	w1.inc, w1.ckptPath = inc1, path
	if _, err := w1.sweep(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := inc1.HoursIngested(); got != 4 {
		t.Fatalf("phase 1 ingested %d hours, want 4", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	// SIGKILL: w1 is abandoned here. No summary, no final write.

	// The held-back hours land while the watcher is down.
	for h, b := range held {
		if err := os.WriteFile(flowtuple.HourPath(dir, h), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: restart through the real CLI path, resuming from the
	// checkpoint directory.
	if err := run([]string{"-data", dir, "-once", "-checkpoint-dir", ckpt}); err != nil {
		t.Fatal(err)
	}

	// The final checkpoint holds the resumed watcher's entire state.
	cp, err := resultstore.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	inc2, err := ds.RestoreIncremental(wcfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	resumed := inc2.Result()
	if got := inc2.HoursIngested(); got != 6 {
		t.Fatalf("resumed watcher ingested %d hours, want 6", got)
	}

	// Cold batch run over the complete dataset: the oracle.
	cold, err := ds.Analyze(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical through the codec: same state, same artifact.
	resumedPath := filepath.Join(t.TempDir(), "resumed.irs")
	coldPath := filepath.Join(t.TempDir(), "cold.irs")
	if err := resultstore.WriteResult(resumedPath, resumed); err != nil {
		t.Fatal(err)
	}
	if err := resultstore.WriteResult(coldPath, cold.Correlate); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(coldPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed state is not byte-identical to the cold batch run")
	}

	// And the notifications derived from the resumed state match too.
	ncfg := notify.Config{MinDevices: 1, MinPackets: 1}
	want := notify.Build(cold.Correlate, ds.Inventory, ds.Registry, ds.Threat, ncfg)
	got := notify.Build(resumed, ds.Inventory, ds.Registry, ds.Threat, ncfg)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("notification bundles diverged after kill-and-restart")
	}
}
