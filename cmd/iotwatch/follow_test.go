package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/flowtuple"
	"iotscope/internal/resultstore"
	"iotscope/internal/stream"
)

func TestFollowValidation(t *testing.T) {
	if err := run([]string{"-data", t.TempDir(), "-follow", "-lateness", "-1"}); err == nil {
		t.Fatal("negative lateness accepted")
	}
}

// The follow-mode restart contract through the real CLI path: a drain run
// over a partial dataset checkpoints and journals its alerts, the held
// hours land while the watcher is down, and a second run resumes from the
// checkpoint, ingests only the late hours, and converges on a checkpoint
// byte-identical to a cold batch run — with every alert in the shared
// journal emitted exactly once across both runs.
func TestFollowDrainResumeExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	gcfg := core.DefaultConfig(0.002, 91)
	gcfg.Hours = 6
	if _, err := core.Generate(gcfg, dir); err != nil {
		t.Fatal(err)
	}
	held := map[int][]byte{}
	for _, h := range []int{4, 5} {
		p := flowtuple.HourPath(dir, h)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		held[h] = b
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	ckpt := t.TempDir()
	args := []string{"-data", dir, "-follow", "-once",
		"-checkpoint-dir", ckpt, "-poll", "2ms", "-backoff", "1ms"}
	if err := run(args); err != nil {
		t.Fatalf("first follow run: %v", err)
	}
	journal := filepath.Join(ckpt, alertLogFile)
	firstAlerts := readAlertJournal(t, journal)
	if len(firstAlerts) == 0 {
		t.Fatal("first run journaled no alerts")
	}

	for h, b := range held {
		if err := os.WriteFile(flowtuple.HourPath(dir, h), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(args); err != nil {
		t.Fatalf("resumed follow run: %v", err)
	}

	// Exactly-once: every journal key appears once, and the new-device
	// alerts match the full dataset's inferred device set.
	alerts := readAlertJournal(t, journal)
	keys := map[string]int{}
	devices := 0
	for _, a := range alerts {
		keys[a.Key]++
		if a.Kind == stream.KindNewDevice {
			devices++
		}
	}
	for k, n := range keys {
		if n != 1 {
			t.Errorf("alert key %q journaled %d times", k, n)
		}
	}

	ds, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Lenient = true
	inc, err := ds.NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < gcfg.Hours; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	if devices != len(inc.Result().Devices) {
		t.Fatalf("%d new-device alerts, want %d", devices, len(inc.Result().Devices))
	}

	oracle := filepath.Join(t.TempDir(), "oracle.irs")
	if err := resultstore.WriteCheckpoint(oracle, inc.Export()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(oracle)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(ckpt, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("follow checkpoint diverged from batch oracle (%d vs %d bytes)", len(got), len(want))
	}
}

func readAlertJournal(t *testing.T, path string) []stream.Alert {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var alerts []stream.Alert
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var a stream.Alert
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		alerts = append(alerts, a)
	}
	return alerts
}
