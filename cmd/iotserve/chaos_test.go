package main

// Signal-driven chaos tests for the full serving lifecycle: SIGHUP hot
// reload under concurrent load, a corrupt-dataset reload that must keep
// the old snapshot serving, and SIGTERM draining in-flight requests to a
// clean (nil-error) exit. The tests send real signals to the test
// process; run() registers its handlers before publishing the bound
// address, so no signal can reach the default handler.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/flowtuple"
)

const chaosToken = "chaos-token"

var (
	fixtureOnce sync.Once
	fixtureDir  string
	fixtureErr  error
)

// fixture generates one small dataset shared by the chaos tests (which
// only ever read it; the corruption test works on a copy).
func fixture(t *testing.T) string {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDir, fixtureErr = os.MkdirTemp("", "iotserve-chaos-*")
		if fixtureErr != nil {
			return
		}
		cfg := core.DefaultConfig(0.002, 11)
		cfg.Hours = 4
		_, fixtureErr = core.Generate(cfg, fixtureDir)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDir
}

// startServer runs iotserve in a goroutine and returns its base URL plus
// the channel run's error will arrive on.
func startServer(t *testing.T, extraArgs ...string) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	testReady = ready
	t.Cleanup(func() { testReady = nil })
	args := append([]string{
		"-data", extraArgs[0], "-token", chaosToken, "-addr", "127.0.0.1:0",
	}, extraArgs[1:]...)
	done := make(chan error, 1)
	go func() { done <- run(args) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
		return "", nil
	}
}

func getJSON(t *testing.T, url, token string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("GET %s: bad JSON %q", url, raw)
	}
	return resp.StatusCode, body
}

// generation polls /healthz for the served snapshot generation.
func generation(t *testing.T, base string) uint64 {
	t.Helper()
	_, body := getJSON(t, base+"/healthz", "")
	snap, ok := body["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("healthz without snapshot block: %v", body)
	}
	return uint64(snap["generation"].(float64))
}

// shutdown sends SIGTERM and requires a clean nil exit from run.
func shutdown(t *testing.T, done <-chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want nil after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestChaosSIGHUPReloadUnderLoad fires 50 concurrent clients at the API,
// hot-reloads via SIGHUP mid-flight, and requires zero 5xx responses and
// an advanced snapshot generation, then drains cleanly on SIGTERM.
func TestChaosSIGHUPReloadUnderLoad(t *testing.T) {
	base, done := startServer(t, fixture(t), "-max-inflight", "0", "-request-timeout", "2m")
	if gen := generation(t, base); gen != 1 {
		t.Fatalf("boot generation %d", gen)
	}

	stop := make(chan struct{})
	var bad5xx, requests atomic.Int64
	var wg sync.WaitGroup
	paths := []string{"/v1/summary", "/v1/devices?limit=5", "/healthz", "/v1/ports/udp?n=3"}
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest("GET", base+paths[i%len(paths)], nil)
				req.Header.Set("Authorization", "Bearer "+chaosToken)
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode >= 500 {
					bad5xx.Add(1)
				}
			}
		}(i)
	}

	// Let load build, then reload while it is in flight.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for generation(t, base) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("reload never landed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := bad5xx.Load(); n != 0 {
		t.Fatalf("%d 5xx responses during SIGHUP reload (of %d)", n, requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("no load was generated")
	}
	shutdown(t, done)
}

// TestChaosCorruptReloadKeepsOldSnapshot corrupts an hour file, sends
// SIGHUP, and requires: generation stays at 1, data endpoints keep
// serving from the old snapshot, and /healthz reports degraded with the
// verify error — the bad reload must never crash or blank the API.
func TestChaosCorruptReloadKeepsOldSnapshot(t *testing.T) {
	dir := copyDataset(t, fixture(t))
	base, done := startServer(t, dir)

	// Structurally corrupt one hour file (bit flips mid-body): Verify
	// must reject the reload.
	path := flowtuple.HourPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := getJSON(t, base+"/healthz", "")
		if body["status"] == "degraded" {
			if code != http.StatusOK {
				t.Fatalf("degraded healthz code %d", code)
			}
			lre, ok := body["lastReloadError"].(map[string]any)
			if !ok || lre["error"] == "" {
				t.Fatalf("degraded without lastReloadError: %v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never degraded: %v", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if gen := generation(t, base); gen != 1 {
		t.Fatalf("corrupt reload advanced generation to %d", gen)
	}
	// The old snapshot still serves.
	if code, _ := getJSON(t, base+"/v1/summary", chaosToken); code != http.StatusOK {
		t.Fatalf("summary after corrupt reload: %d", code)
	}
	shutdown(t, done)
}

// TestChaosSIGTERMDrainsInFlight keeps request traffic running when
// SIGTERM lands and requires every accepted request to finish without a
// 5xx before the clean exit.
func TestChaosSIGTERMDrainsInFlight(t *testing.T) {
	base, done := startServer(t, fixture(t))

	var wg sync.WaitGroup
	var bad5xx, completed atomic.Int64
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: time.Minute}
			for j := 0; j < 50; j++ {
				req, _ := http.NewRequest("GET", base+"/v1/summary", nil)
				req.Header.Set("Authorization", "Bearer "+chaosToken)
				resp, err := client.Do(req)
				if err != nil {
					// The listener closed under us: acceptable once the
					// drain began, and no response was produced.
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				completed.Add(1)
				if resp.StatusCode >= 500 {
					bad5xx.Add(1)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	shutdown(t, done)
	wg.Wait()
	if n := bad5xx.Load(); n != 0 {
		t.Fatalf("%d 5xx responses across SIGTERM drain (of %d)", n, completed.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed before drain")
	}
}

// copyDataset clones a generated dataset directory so a test can damage
// it freely.
func copyDataset(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestMain cleans up the shared fixture.
func TestMain(m *testing.M) {
	code := m.Run()
	if fixtureDir != "" {
		os.RemoveAll(fixtureDir)
	}
	os.Exit(code)
}
