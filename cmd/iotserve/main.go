// Command iotserve analyzes a dataset and serves the results over the
// authenticated HTTP API (see internal/apiserve), realizing the paper's
// plan to share IoT-relevant malicious empirical data, attack signatures,
// and threat intelligence with the community.
//
// iotserve is built to run unattended:
//
//   - SIGINT/SIGTERM drain gracefully: /healthz flips to draining,
//     in-flight requests finish (bounded by -drain), and a clean close
//     exits 0.
//   - SIGHUP hot-reloads the dataset: the load runs as a staged pipeline
//     (open → load-store → verify → analyze, see core.LoadSnapshotOpts)
//     under the -reload-timeout deadline before an atomic swap; a bad or
//     overrun reload keeps the old snapshot serving and marks health
//     degraded. -reload-poll additionally watches the dataset directory
//     mtime and reloads when it changes. The latest load's per-stage
//     report is served at /v1/pipeline and written to -stage-report.
//   - -snapshot FILE cold-starts from a result store artifact written by
//     iotinfer -save, skipping verification and re-analysis. At boot a
//     corrupt, truncated, or stale artifact falls back to raw analysis
//     with the reason surfaced as degraded health; on hot reload the
//     store is mandatory (a bad artifact keeps the old snapshot — a
//     reload must never silently pay a full re-analysis). /healthz
//     reports the provenance either way.
//   - Admission control sheds load instead of collapsing: -max-inflight
//     caps concurrency (503 + Retry-After), -rate/-burst rate-limit each
//     token (429 + Retry-After), and -request-timeout propagates a
//     context deadline to every handler.
//   - -debug-addr (off by default) binds an operator-only observability
//     server: /debug/vars (snapshot generation, matview build stats,
//     request/304 counters, shed and 429 counts) and the net/http/pprof
//     endpoints. It carries no auth — keep it on loopback or an internal
//     network.
//
// Usage:
//
//	iotserve -data DIR -token SECRET [-token SECRET2 ...] [-addr :8642]
//	         [-snapshot store.irs]
//	         [-max-inflight 256] [-rate 0] [-burst 0] [-request-timeout 30s]
//	         [-drain 10s] [-reload-poll 0] [-reload-timeout 2m]
//	         [-stage-report FILE|-] [-debug-addr 127.0.0.1:8643]
//
// Endpoints (Bearer auth except /healthz):
//
//	GET /healthz
//	GET /v1/summary
//	GET /v1/devices?country=RU&category=cps&limit=100&offset=0
//	GET /v1/devices/{id}
//	GET /v1/threats/{ip}
//	GET /v1/spikes?threshold=8
//	GET /v1/ports/tcp  /v1/ports/udp?n=10
//	GET /v1/signatures
//	GET /v1/campaigns
//	GET /v1/malware
//	GET /v1/pipeline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iotscope/internal/apiserve"
	"iotscope/internal/core"
	"iotscope/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		os.Exit(1)
	}
}

// testReady, when non-nil, receives the bound listen address once the
// server is accepting connections (chaos tests bind to :0).
var testReady chan<- string

// tokenList collects repeatable -token flags.
type tokenList []string

func (t *tokenList) String() string { return fmt.Sprintf("%d token(s)", len(*t)) }
func (t *tokenList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotserve", flag.ContinueOnError)
	var tokens tokenList
	var (
		data       = fs.String("data", "", "dataset directory (required)")
		snapshot   = fs.String("snapshot", "", "result store artifact to serve from (written by iotinfer -save)")
		addr       = fs.String("addr", ":8642", "listen address")
		maxInFl    = fs.Int("max-inflight", 256, "max concurrent requests before shedding 503 (0 disables)")
		rate       = fs.Float64("rate", 0, "per-token request rate limit in req/s (0 disables)")
		burst      = fs.Int("burst", 0, "per-token burst allowance (defaults to 2x -rate)")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request context deadline (0 disables)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful shutdown deadline for in-flight requests")
		reloadPoll = fs.Duration("reload-poll", 0, "poll the dataset dir mtime and hot-reload on change (0 disables; SIGHUP always reloads)")
		reloadTO   = fs.Duration("reload-timeout", 2*time.Minute, "deadline for a hot reload's load pipeline (0 disables)")
		stageRep   = fs.String("stage-report", "", "write the boot load's per-stage pipeline metrics JSON to this file (- = stderr)")
		debugAddr  = fs.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (off when empty; no auth — bind loopback)")
	)
	fs.Var(&tokens, "token", "API bearer token (repeatable; at least one required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || len(tokens) == 0 {
		return fmt.Errorf("-data and -token are required")
	}
	if *drain <= 0 {
		return fmt.Errorf("-drain must be positive")
	}

	fmt.Fprintf(os.Stderr, "loading and verifying dataset %s ...\n", *data)
	// At boot a bad store falls back to raw analysis (RequireStore false):
	// better to come up degraded than not at all.
	ds, res, prov, loadRep, err := core.LoadSnapshotOpts(context.Background(), *data,
		core.LoadOptions{Store: *snapshot})
	if emitErr := pipeline.EmitReport(loadRep, *stageRep); emitErr != nil && err == nil {
		err = emitErr
	}
	if err != nil {
		return err
	}
	if prov.Fallback != "" {
		fmt.Fprintf(os.Stderr, "iotserve: snapshot store unusable, analyzed raw hours instead: %s\n", prov.Fallback)
	}

	var opts []apiserve.Option
	if *maxInFl > 0 {
		opts = append(opts, apiserve.WithConcurrencyLimit(*maxInFl, time.Second))
	}
	if *rate > 0 {
		b := *burst
		if b <= 0 {
			b = int(2 * *rate)
			if b < 1 {
				b = 1
			}
		}
		opts = append(opts, apiserve.WithRateLimit(*rate, b))
	}
	if *reqTimeout > 0 {
		opts = append(opts, apiserve.WithRequestTimeout(*reqTimeout))
	}
	api, err := apiserve.New(ds, res, tokens, opts...)
	if err != nil {
		return err
	}
	api.SetLoadReport(loadRep)
	api.SetProvenance(prov)

	// Signals are registered before the listener exists so no signal can
	// hit the default handler (process kill) once the address is
	// published.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigCh)

	// Listen separately from Serve so a bind failure is reported as such
	// (and tests can use :0 and learn the bound port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "serving %d inferred devices on %s (%d token(s), snapshot gen %d)\n",
		res.Summary.Total, ln.Addr(), len(tokens), api.Generation())
	if testReady != nil {
		testReady <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("debug listen %s: %w", *debugAddr, err)
		}
		dbgSrv := &http.Server{
			Handler:           api.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		defer dbgSrv.Close()
		go dbgSrv.Serve(dln) //nolint:errcheck // closed on exit
		fmt.Fprintf(os.Stderr, "iotserve: debug endpoints on %s (unauthenticated)\n", dln.Addr())
	}

	var pollCh <-chan time.Time
	var lastMtime time.Time
	if *reloadPoll > 0 {
		lastMtime = dirMtime(*data)
		t := time.NewTicker(*reloadPoll)
		defer t.Stop()
		pollCh = t.C
	}

	for {
		select {
		case err := <-serveErr:
			// Serve returned without a shutdown being requested. A clean
			// close is a clean exit; anything else is a real
			// listener/accept failure.
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return fmt.Errorf("serve: %w", err)

		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				reload(api, *data, *snapshot, *reloadTO)
				continue
			}
			// SIGINT/SIGTERM: drain in-flight requests, bounded.
			fmt.Fprintf(os.Stderr, "iotserve: %v received, draining (max %v) ...\n", sig, *drain)
			api.SetDraining(true)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			shutdownErr := httpSrv.Shutdown(ctx)
			cancel()
			if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
				return fmt.Errorf("serve: %w", err)
			}
			if shutdownErr != nil {
				httpSrv.Close()
				return fmt.Errorf("drain deadline exceeded, connections force-closed: %w", shutdownErr)
			}
			fmt.Fprintln(os.Stderr, "iotserve: drained, clean exit")
			return nil

		case <-pollCh:
			if m := dirMtime(*data); m.After(lastMtime) {
				lastMtime = m
				fmt.Fprintf(os.Stderr, "iotserve: dataset dir changed, reloading ...\n")
				reload(api, *data, *snapshot, *reloadTO)
			}
		}
	}
}

// reload validates, analyzes, and swaps in the dataset at dir, running the
// load pipeline under the reload deadline. With a store configured the
// reload is gated on it verifying (RequireStore): a corrupt or stale
// artifact rejects the reload and the old snapshot keeps serving — a hot
// reload must never fall back to a surprise full re-analysis inside the
// deadline. On any failure the current snapshot keeps serving and health
// reports degraded. The per-stage report of the attempt (successful or
// not) replaces the one served at /v1/pipeline.
func reload(api *apiserve.Server, dir, store string, timeout time.Duration) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ds, res, prov, rep, err := core.LoadSnapshotOpts(ctx, dir,
		core.LoadOptions{Store: store, RequireStore: store != ""})
	api.SetLoadReport(rep)
	if err != nil {
		api.NoteReloadFailure(err)
		fmt.Fprintf(os.Stderr, "iotserve: reload rejected, keeping snapshot gen %d: %v\n",
			api.Generation(), err)
		return
	}
	gen, err := api.Swap(ds, res)
	if err != nil {
		api.NoteReloadFailure(err)
		return
	}
	api.SetProvenance(prov)
	fmt.Fprintf(os.Stderr, "iotserve: snapshot gen %d live (%d devices, source %s)\n",
		gen, res.Summary.Total, prov.Source)
}

// dirMtime returns the dataset directory's modification time (zero on
// error): renames into the directory bump it, which is exactly the atomic
// publish step of the PR-1 hour-file writer.
func dirMtime(dir string) time.Time {
	fi, err := os.Stat(dir)
	if err != nil {
		return time.Time{}
	}
	return fi.ModTime()
}
