// Command iotserve analyzes a dataset and serves the results over the
// authenticated HTTP API (see internal/apiserve), realizing the paper's
// plan to share IoT-relevant malicious empirical data, attack signatures,
// and threat intelligence with the community.
//
// Usage:
//
//	iotserve -data DIR -token SECRET [-addr :8642]
//
// Endpoints (Bearer auth except /healthz):
//
//	GET /healthz
//	GET /v1/summary
//	GET /v1/devices?country=RU&category=cps&limit=100&offset=0
//	GET /v1/devices/{id}
//	GET /v1/threats/{ip}
//	GET /v1/spikes?threshold=8
//	GET /v1/ports/tcp  /v1/ports/udp?n=10
//	GET /v1/signatures
//	GET /v1/campaigns
//	GET /v1/malware
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"iotscope/internal/apiserve"
	"iotscope/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iotserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iotserve", flag.ContinueOnError)
	var (
		data  = fs.String("data", "", "dataset directory (required)")
		token = fs.String("token", "", "API bearer token (required)")
		addr  = fs.String("addr", ":8642", "listen address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" || *token == "" {
		return fmt.Errorf("-data and -token are required")
	}
	ds, err := core.Open(*data)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	fmt.Fprintf(os.Stderr, "analyzing %d hours ...\n", ds.Scenario.Hours)
	res, err := ds.Analyze(cfg)
	if err != nil {
		return err
	}
	srv, err := apiserve.New(ds, res, []string{*token})
	if err != nil {
		return err
	}
	// Full-request timeouts so a slow or stalled client cannot pin a
	// connection (and its goroutine) indefinitely.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "serving %d inferred devices on %s\n",
		res.Summary.Total, *addr)
	return httpSrv.ListenAndServe()
}
