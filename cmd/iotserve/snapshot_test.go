package main

// Boot-path tests for -snapshot: serving straight from a result store
// artifact, and surviving a corrupt one by falling back to raw analysis
// with degraded health. They drive the real run() through the same
// harness as the chaos tests.

import (
	"net/http"
	"path/filepath"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/faultfs"
)

// fixtureStore analyzes the shared fixture once per call and writes the
// correlation state as a result store artifact (what iotinfer -save does).
func fixtureStore(t *testing.T) (string, string) {
	t.Helper()
	dir := fixture(t)
	ds, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snapshot.irs")
	if err := core.SaveSnapshot(path, res); err != nil {
		t.Fatal(err)
	}
	return dir, path
}

// snapshotBlock fetches /healthz and returns (status, snapshot block).
func snapshotBlock(t *testing.T, base string) (string, map[string]any) {
	t.Helper()
	code, body := getJSON(t, base+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz code %d: %v", code, body)
	}
	snap, ok := body["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("healthz without snapshot block: %v", body)
	}
	return body["status"].(string), snap
}

// A cold start from a valid store artifact serves without re-analysis and
// says so: /healthz reports source "store" with the artifact path and
// codec version, and the data endpoints serve normally.
func TestSnapshotBootFromStore(t *testing.T) {
	dir, store := fixtureStore(t)
	base, done := startServer(t, dir, "-snapshot", store)

	status, snap := snapshotBlock(t, base)
	if status != "ok" {
		t.Fatalf("status %q, want ok", status)
	}
	if snap["source"] != "store" || snap["store"] != store {
		t.Fatalf("snapshot block %v, want store provenance for %s", snap, store)
	}
	if snap["codecVersion"].(float64) < 1 {
		t.Fatalf("snapshot block lacks codec version: %v", snap)
	}
	if code, body := getJSON(t, base+"/v1/summary", chaosToken); code != http.StatusOK {
		t.Fatalf("summary from store-loaded snapshot: %d %v", code, body)
	}
	shutdown(t, done)
}

// A corrupt store artifact must never keep the server down: it boots by
// analyzing the raw hours, serves normally, and reports degraded health
// with the fallback reason — operators see the broken artifact, clients
// see no outage.
func TestSnapshotBootCorruptStoreFallsBack(t *testing.T) {
	dir, store := fixtureStore(t)
	if err := faultfs.BitFlip(store, 40, 0x10); err != nil {
		t.Fatal(err)
	}
	base, done := startServer(t, dir, "-snapshot", store)

	status, snap := snapshotBlock(t, base)
	if status != "degraded" {
		t.Fatalf("status %q, want degraded after store fallback", status)
	}
	if snap["source"] != "analyze" || snap["storeFallback"] == "" {
		t.Fatalf("snapshot block %v, want analyze provenance with fallback reason", snap)
	}
	if code, _ := getJSON(t, base+"/v1/summary", chaosToken); code != http.StatusOK {
		t.Fatalf("summary after store fallback: %d", code)
	}
	shutdown(t, done)
}
