package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-data", "x"}); err == nil {
		t.Fatal("missing token accepted")
	}
	if err := run([]string{"-data", t.TempDir(), "-token", "x"}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := run([]string{"-data", "x", "-token", "x", "-drain", "0s"}); err == nil {
		t.Fatal("zero drain deadline accepted")
	}
	if err := run([]string{"-data", "x", "-token", "x", "-rate", "-1"}); err == nil {
		t.Fatal("nonexistent dataset accepted")
	}
}
