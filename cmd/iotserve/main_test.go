package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-data", "x"}); err == nil {
		t.Fatal("missing token accepted")
	}
	if err := run([]string{"-data", t.TempDir(), "-token", "x"}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
