// Command scenariogen regenerates the bundled JSON scenario files under
// internal/scenario/scenarios/ from their programmatic definitions, so the
// committed files are always the canonical encoding (stable key order,
// stable indentation, trailing newline). Run it via `make scenarios` after
// changing a definition; TestBundledFilesAreCanonical fails the build if
// the committed files drift from what this tool writes.
//
// The stealth-scan scenario is deliberately NOT generated: it is
// hand-written TOML, exercising the second codec end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"iotscope/internal/geo"
	"iotscope/internal/netx"
	"iotscope/internal/wgen"
)

func main() {
	dir := flag.String("dir", "internal/scenario/scenarios", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, cfg := range Bundled() {
		name := fmt.Sprintf("%s@%d.json", cfg.Name, cfg.Version)
		data, err := cfg.CanonicalJSON()
		if err != nil {
			log.Fatalf("encode %s: %v", name, err)
		}
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
		fmt.Println("wrote", path)
	}
}

// Bundled returns the programmatic definitions of the generated bundled
// scenarios.
func Bundled() []*wgen.Config {
	return []*wgen.Config{
		paperDefault(),
		miraiWave(),
		udpAmplification(),
		cpsCampaign(),
		smartHomeDiurnal(),
		telescope16(),
		telescope24(),
	}
}

// paperDefault is the exact declarative form of wgen.Default(): the pinned
// byte-identity scenario. Scale and seed are resolve-time inputs, so the
// arguments here only shape fields that do not depend on them.
func paperDefault() *wgen.Config {
	return wgen.ConfigFromScenario(wgen.Default(1, 0), "paper-default", 1,
		"The paper's 143-hour evaluation workload, calibrated to Tables IV/V and Figs. 2-11; byte-identical to wgen.Default().")
}

// basePopulation lifts the paper's population shape for the derived
// scenarios, so their compromised-device demographics stay calibrated.
func basePopulation() (wgen.Population, *geo.Config) {
	def := wgen.ConfigFromScenario(wgen.Default(1, 0), "paper-default", 1, "")
	return def.Population, def.Telescope
}

// baselineTCPScan is the paper's Table V scanning mix with the scripted
// one-off events (SSH spikes, BackroomNet, the port-spike camera) removed:
// a steady, loud scanning floor for scenarios that plant something else on
// top of it.
func baselineTCPScan() *wgen.TCPScanConfig {
	tcp := wgen.Default(1, 0).TCPScan
	tcp.SSHSpike = wgen.SpikeEvent{}
	tcp.BackroomPacketsPerHour = 0
	tcp.BackroomStartHour = 0
	tcp.BackroomCountry = ""
	tcp.BackroomService = ""
	tcp.PortSpikePorts = 0
	tcp.PortSpikeHour = 0
	tcp.PortSpikeDests = 0
	tcp.PortSpikeCountry = ""
	return &tcp
}

func defaultBackground() *wgen.BackgroundConfig {
	bg := wgen.Default(1, 0).Background
	return &bg
}

func miraiWave() *wgen.Config {
	pop, tel := basePopulation()
	return &wgen.Config{
		Format:      wgen.ConfigFormat,
		Name:        "mirai-wave",
		Version:     1,
		Description: "Mirai-style worm propagation: a logistic infection wave of consumer bots flooding telnet, each churning out after a bounded lifetime (Choi et al.).",
		Hours:       72,
		Telescope:   tel,
		Population:  pop,
		Actors: []wgen.ActorBlock{
			{Kind: wgen.KindTCPScan, Params: baselineTCPScan()},
			{Kind: wgen.KindBackground, Params: defaultBackground()},
			{Kind: wgen.KindMiraiWave, Params: &wgen.MiraiWaveConfig{
				Devices:          5000,
				StartHour:        2,
				RampHours:        40,
				LifetimeMinHours: 6,
				LifetimeMaxHours: 18,
				PacketsPerHour:   150,
				Ports:            []uint16{23, 2323},
			}},
		},
	}
}

func udpAmplification() *wgen.Config {
	pop, tel := basePopulation()
	return &wgen.Config{
		Format:      wgen.ConfigFormat,
		Name:        "udp-amplification",
		Version:     1,
		Description: "UDP amplification backscatter: compromised devices abused as NTP/DNS/SSDP reflectors spray large UDP responses whose spoofed targets land in the telescope.",
		Hours:       48,
		Telescope:   tel,
		Population:  pop,
		Actors: []wgen.ActorBlock{
			{Kind: wgen.KindTCPScan, Params: baselineTCPScan()},
			{Kind: wgen.KindBackground, Params: defaultBackground()},
			{Kind: wgen.KindUDPAmplification, Params: &wgen.UDPAmplificationConfig{
				Reflectors:    3000,
				HourlyPackets: 90000,
				Services: []wgen.AmplificationService{
					{Name: "NTP", Port: 123, Share: 50},
					{Name: "DNS", Port: 53, Share: 30},
					{Name: "SSDP", Port: 1900, Share: 20},
				},
				MinLen: 200,
				MaxLen: 480,
			}},
		},
	}
}

func cpsCampaign() *wgen.Config {
	pop, tel := basePopulation()
	return &wgen.Config{
		Format:      wgen.ConfigFormat,
		Name:        "cps-campaign",
		Version:     1,
		Description: "A coordinated industrial-protocol campaign: CPS devices scan Modbus and BACnet/IP inside a bounded 24-hour window.",
		Hours:       72,
		Telescope:   tel,
		Population:  pop,
		Actors: []wgen.ActorBlock{
			{Kind: wgen.KindTCPScan, Params: baselineTCPScan()},
			{Kind: wgen.KindBackground, Params: defaultBackground()},
			{Kind: wgen.KindCPSCampaign, Params: &wgen.CPSCampaignConfig{
				Devices:       1200,
				StartHour:     30,
				DurationHours: 24,
				HourlyPackets: 250000,
				Services: []wgen.CPSCampaignService{
					{Name: "Modbus TCP", Port: 502, Share: 60},
					{Name: "BACnet/IP", Port: 47808, Share: 40},
				},
			}},
		},
	}
}

func smartHomeDiurnal() *wgen.Config {
	pop, tel := basePopulation()
	return &wgen.Config{
		Format:      wgen.ConfigFormat,
		Name:        "smart-home-diurnal",
		Version:     1,
		Description: "Smart-home discovery chatter from outside the inventory, breathing with a day/night cycle (Mainuddin et al.); correlation must discard all of it.",
		Hours:       48,
		Telescope:   tel,
		Population:  pop,
		Actors: []wgen.ActorBlock{
			{Kind: wgen.KindTCPScan, Params: baselineTCPScan()},
			{Kind: wgen.KindBackground, Params: defaultBackground()},
			{Kind: wgen.KindDiurnalBackground, Params: &wgen.DiurnalBackgroundConfig{
				HourlyPackets: 400000,
				Sources:       50000,
				PeakHour:      20,
				MinFactor:     0.15,
				Ports:         []uint16{5353, 1900, 3702},
			}},
		},
	}
}

// telescopeVariant shrinks the telescope while keeping the full paper
// workload, for sensitivity testing: the same planted events must still be
// recovered from a /16 or /24 vantage.
func telescopeVariant(name, prefix, size string) *wgen.Config {
	cfg := wgen.ConfigFromScenario(wgen.Default(1, 0), name, 1,
		"The full paper workload observed through a "+size+" sub-telescope ("+prefix+") instead of the /8; a telescope-size sensitivity fixture.")
	cfg.Telescope.DarkPrefix = netx.MustParsePrefix(prefix)
	return cfg
}

func telescope16() *wgen.Config {
	return telescopeVariant("telescope-16", "44.0.0.0/16", "/16")
}

func telescope24() *wgen.Config {
	return telescopeVariant("telescope-24", "44.0.0.0/24", "/24")
}
