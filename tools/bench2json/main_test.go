package main

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: iotscope
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineCorrelate 	       3	 937980439 ns/op	172166738 B/op	  688894 allocs/op
BenchmarkPipelineCorrelate 	       3	 983101006 ns/op	172071554 B/op	  688874 allocs/op
BenchmarkPipelineCorrelate 	       3	 951538391 ns/op	172172984 B/op	  688895 allocs/op
BenchmarkIncrementalIngest 	     397	   6064348 ns/op	 1188352 B/op	    4724 allocs/op
PASS
ok  	iotscope	15.049s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample), "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "iotscope" {
		t.Fatalf("header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu: %q", rep.CPU)
	}
	pc := rep.Benchmarks["BenchmarkPipelineCorrelate"]
	if pc == nil || len(pc.Samples) != 3 {
		t.Fatalf("pipeline samples: %+v", pc)
	}
	if pc.MedianNs != 951538391 {
		t.Fatalf("pipeline median ns %v", pc.MedianNs)
	}
	if pc.MedianAllocs != 688894 {
		t.Fatalf("pipeline median allocs %v", pc.MedianAllocs)
	}
	ii := rep.Benchmarks["BenchmarkIncrementalIngest"]
	if ii == nil || len(ii.Samples) != 1 || ii.Samples[0].Iters != 397 {
		t.Fatalf("ingest samples: %+v", ii)
	}
	if ii.Samples[0].BPerOp != 1188352 || ii.Samples[0].AllocsPerOp != 4724 {
		t.Fatalf("ingest memory columns: %+v", ii.Samples[0])
	}
	// The raw text round-trips unmodified, so benchstat can consume it.
	if rep.Raw != sample {
		t.Fatalf("raw text not preserved:\n%q", rep.Raw)
	}
}

// GOMAXPROCS comes from the "-N" suffix of top-level benchmark names;
// shard counts from "/shards-N" sub-benchmark segments. A suffix-free run
// (GOMAXPROCS=1) stamps 1.
func TestParseProcsAndShards(t *testing.T) {
	const sharded = `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineCorrelate-8 	 3	 937980439 ns/op
BenchmarkPipelineCorrelateSharded/shards-1-8 	 3	 940000000 ns/op
BenchmarkPipelineCorrelateSharded/shards-4-8 	 3	 250000000 ns/op
PASS
`
	rep, err := parse(strings.NewReader(sharded), "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs != 8 {
		t.Fatalf("gomaxprocs %d, want 8", rep.GoMaxProcs)
	}
	if b := rep.Benchmarks["BenchmarkPipelineCorrelateSharded/shards-4-8"]; b == nil || b.Shards != 4 {
		t.Fatalf("shards-4 bench: %+v", b)
	}
	if b := rep.Benchmarks["BenchmarkPipelineCorrelate-8"]; b == nil || b.Shards != 0 {
		t.Fatalf("unsharded bench should carry Shards 0: %+v", b)
	}

	// Single-core shape: no -N suffix anywhere; "/shards-4" must not be
	// mistaken for a GOMAXPROCS marker.
	const singleCore = `BenchmarkPipelineCorrelate 	 3	 937980439 ns/op
BenchmarkPipelineCorrelateSharded/shards-4 	 3	 950000000 ns/op
`
	rep, err = parse(strings.NewReader(singleCore), "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoMaxProcs != 1 {
		t.Fatalf("gomaxprocs %d, want 1", rep.GoMaxProcs)
	}
	if b := rep.Benchmarks["BenchmarkPipelineCorrelateSharded/shards-4"]; b == nil || b.Shards != 4 {
		t.Fatalf("shards-4 bench: %+v", b)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n"), ""); err == nil {
		t.Fatal("expected error on input without benchmark lines")
	}
}

func TestParseBenchLine(t *testing.T) {
	name, s, ok := parseBenchLine("BenchmarkX-8 	 100 	 12345 ns/op")
	if !ok || name != "BenchmarkX-8" || s.Iters != 100 || s.NsPerOp != 12345 {
		t.Fatalf("got %q %+v %v", name, s, ok)
	}
	if _, _, ok := parseBenchLine("BenchmarkBroken"); ok {
		t.Fatal("short line accepted")
	}
	if _, _, ok := parseBenchLine("BenchmarkNoNs 10 banana ns"); ok {
		t.Fatal("line without ns/op accepted")
	}
}

// The tag/commit/go-version stamps ride on the document, not the parse:
// parse leaves them empty and main fills them in. gitCommit is best effort
// and must never fail the conversion.
func TestStampFields(t *testing.T) {
	rep, err := parse(strings.NewReader(sample), "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tag != "" || rep.Commit != "" || rep.GoVersion != "" {
		t.Fatalf("parse must not stamp run metadata: %+v", rep)
	}
	rep.Tag = "pr5"
	rep.Commit = gitCommit()
	rep.GoVersion = runtime.Version()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tag != "pr5" || back.GoVersion != runtime.Version() {
		t.Fatalf("stamps lost across JSON round trip: %+v", back)
	}
	if back.Commit != rep.Commit {
		t.Fatalf("commit lost: %q != %q", back.Commit, rep.Commit)
	}
}
