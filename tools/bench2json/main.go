// Command bench2json converts `go test -bench` text output into a small
// JSON document suitable for committing alongside the code it measured.
// Committed artifacts follow the BENCH_<date>-<tag>.json naming convention
// (see docs/PERFORMANCE.md); -tag stamps the tag into the document, and
// the git commit and Go toolchain version are embedded automatically so a
// number can always be traced to the tree that produced it. The raw
// benchmark text is embedded verbatim so a committed file can be fed
// straight back into benchstat:
//
//	go test -bench ... | go run ./tools/bench2json -date 2026-08-06 -tag pr5 > BENCH_2026-08-06-pr5.json
//	go run ./tools/bench2json -extract BENCH_2026-08-06-pr5.json > old.txt
//	benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark line.
type Sample struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Bench aggregates the samples of one benchmark name.
type Bench struct {
	Samples      []Sample `json:"samples"`
	MedianNs     float64  `json:"median_ns"`
	MedianAllocs int64    `json:"median_allocs"`
	// Shards is the shard count parsed from a "/shards-N" sub-benchmark
	// segment (0 when the benchmark is not sharded), so scaling curves can
	// be reconstructed from the committed document alone.
	Shards int `json:"shards,omitempty"`
}

// Report is the committed document.
type Report struct {
	Date string `json:"date"`
	// Tag labels the run (e.g. "pr5", "baseline") and names the artifact:
	// BENCH_<date>-<tag>.json.
	Tag string `json:"tag,omitempty"`
	// Commit is the git commit hash of the measured tree (best effort:
	// empty outside a git checkout).
	Commit string `json:"commit,omitempty"`
	// GoVersion is the toolchain that ran the benchmarks.
	GoVersion  string            `json:"goVersion,omitempty"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg string `json:"pkg,omitempty"`
	CPU string `json:"cpu,omitempty"`
	// GoMaxProcs is the parallelism the benchmarks ran with, parsed from
	// the "-N" benchmark-name suffix (Go omits it at GOMAXPROCS=1, so 1
	// means a single-core run). Scaling numbers are meaningless without it.
	GoMaxProcs int               `json:"gomaxprocs,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
	Raw        string            `json:"raw"`
}

// gitCommit reports the current checkout's short commit hash, with a
// "-dirty" suffix when the work tree has uncommitted changes. Best effort:
// empty when git or a repository is unavailable — a missing commit must
// never fail the conversion.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if commit == "" {
		return ""
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		commit += "-dirty"
	}
	return commit
}

func main() {
	date := flag.String("date", "", "date stamp for the report (YYYY-MM-DD)")
	tag := flag.String("tag", "", "run label, names the artifact BENCH_<date>-<tag>.json")
	extract := flag.String("extract", "", "read a bench2json file and print its raw text (for benchstat)")
	flag.Parse()

	if *extract != "" {
		if err := runExtract(*extract); err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		return
	}
	rep, err := parse(os.Stdin, *date)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	rep.Tag = *tag
	rep.Commit = gitCommit()
	rep.GoVersion = runtime.Version()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

func runExtract(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	_, err = io.WriteString(os.Stdout, rep.Raw)
	return err
}

// parse reads `go test -bench` output: header key: value lines, then
// benchmark result lines "BenchmarkName-N  iters  X ns/op [Y B/op  Z allocs/op]".
func parse(r io.Reader, date string) (*Report, error) {
	rep := &Report{Date: date, Benchmarks: map[string]*Bench{}}
	var raw strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line)
		raw.WriteByte('\n')
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b := rep.Benchmarks[name]
			if b == nil {
				b = &Bench{Shards: parseShards(name)}
				rep.Benchmarks[name] = b
			}
			b.Samples = append(b.Samples, s)
			if p := parseProcsSuffix(name); p > rep.GoMaxProcs {
				rep.GoMaxProcs = p
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	if rep.GoMaxProcs == 0 {
		// Go omits the -N suffix at GOMAXPROCS=1.
		rep.GoMaxProcs = 1
	}
	for _, b := range rep.Benchmarks {
		b.MedianNs = medianF(b.Samples, func(s Sample) float64 { return s.NsPerOp })
		b.MedianAllocs = int64(medianF(b.Samples, func(s Sample) float64 { return float64(s.AllocsPerOp) }))
	}
	rep.Raw = raw.String()
	return rep, nil
}

func parseBenchLine(line string) (string, Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Sample{}, false
	}
	name := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Sample{}, false
	}
	s := Sample{Iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
			seen = true
		case "B/op":
			s.BPerOp = int64(v)
		case "allocs/op":
			s.AllocsPerOp = int64(v)
		}
	}
	return name, s, seen
}

// parseProcsSuffix reads the GOMAXPROCS marker Go appends to benchmark
// names ("BenchmarkX-8" → 8). Only top-level names are trusted: in a
// sub-benchmark like "Benchmark/shards-4" the trailing number is the
// parameter, not the parallelism (at GOMAXPROCS=1 Go appends no suffix, so
// the two are indistinguishable there). Every bench run includes top-level
// benchmarks, which settle it.
func parseProcsSuffix(name string) int {
	if strings.ContainsRune(name, '/') {
		return 0
	}
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// parseShards reads a "/shards-N" sub-benchmark segment ("Benchmark/shards-4"
// or "Benchmark/shards-4-8"); 0 when the benchmark is not sharded.
func parseShards(name string) int {
	const marker = "/shards-"
	i := strings.Index(name, marker)
	if i < 0 {
		return 0
	}
	rest := name[i+len(marker):]
	if j := strings.IndexAny(rest, "-/"); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

func medianF(samples []Sample, get func(Sample) float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = get(s)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
