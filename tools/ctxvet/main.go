// Command ctxvet enforces the repository's context-hygiene rule: every
// exported function or method that spawns a goroutine must accept a
// context.Context, so callers can always cancel the concurrency they
// started. The serving layer (internal/apiserve) is exempt — its handlers
// receive per-request contexts from net/http — as are tests.
//
// Usage:
//
//	go run ./tools/ctxvet ./internal/... ./cmd/...
//
// Arguments are directory patterns; a trailing /... recurses. Exits
// nonzero and lists offenders if any exported goroutine-spawning function
// is missing a context.Context parameter.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./internal/...", "./cmd/..."}
	}
	var dirs []string
	for _, pat := range args {
		expanded, err := expand(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctxvet:", err)
			os.Exit(2)
		}
		dirs = append(dirs, expanded...)
	}
	bad := 0
	for _, dir := range dirs {
		offenders, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctxvet:", err)
			os.Exit(2)
		}
		for _, o := range offenders {
			fmt.Fprintln(os.Stderr, o)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "ctxvet: %d exported function(s) spawn goroutines without taking context.Context\n", bad)
		os.Exit(1)
	}
}

// expand resolves a directory pattern; a trailing /... walks the tree.
func expand(pat string) ([]string, error) {
	if !strings.HasSuffix(pat, "/...") {
		return []string{pat}, nil
	}
	root := strings.TrimSuffix(pat, "/...")
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// exempt reports whether the package directory is outside the rule: the
// HTTP serving layer gets its contexts from net/http requests.
func exempt(dir string) bool {
	return filepath.Base(dir) == "apiserve"
}

// checkDir parses every non-test Go file in dir and reports exported
// goroutine-spawning functions that lack a context.Context parameter.
func checkDir(dir string) ([]string, error) {
	if exempt(dir) {
		return nil, nil
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var offenders []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				if !spawnsGoroutine(fn.Body) {
					continue
				}
				if takesContext(fn.Type) {
					continue
				}
				pos := fset.Position(fn.Pos())
				offenders = append(offenders, fmt.Sprintf(
					"%s: exported %s spawns a goroutine but takes no context.Context",
					pos, funcName(fn)))
			}
		}
	}
	return offenders, nil
}

// spawnsGoroutine reports whether the body lexically contains a go
// statement, including inside nested closures — a closure's goroutine
// still runs on the exported function's behalf.
func spawnsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// takesContext reports whether any parameter's type is context.Context.
func takesContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		ident, ok := sel.X.(*ast.Ident)
		if ok && ident.Name == "context" && sel.Sel.Name == "Context" {
			return true
		}
	}
	return false
}

func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
