package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func doc(date, cpu string, medians map[string]float64) *Report {
	benches := make(map[string]*Bench, len(medians))
	for k, v := range medians {
		benches[k] = &Bench{MedianNs: v}
	}
	return &Report{Date: date, CPU: cpu, Benchmarks: benches}
}

const cpu = "Intel(R) Xeon(R) Processor @ 2.10GHz"

func TestPassWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1200}))
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, false); err != nil {
		t.Fatalf("20%% regression under a 25%% limit must pass: %v", err)
	}
}

func TestFailBeyondThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1300}))
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, false); err == nil {
		t.Fatal("30% regression above a 25% limit must fail")
	}
}

// The baseline key may carry the GOMAXPROCS suffix when the new run
// doesn't (and vice versa): different runners, same benchmark.
func TestProcsSuffixTolerated(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate-8": 1000}))
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 900}))
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, false); err != nil {
		t.Fatalf("suffix mismatch must still match the benchmark: %v", err)
	}
}

// A baseline recorded on different hardware is noise: warn and pass
// unless forced.
func TestCrossMachineSkips(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", "AMD EPYC 7763",
		map[string]float64{"BenchmarkPipelineCorrelate": 100}))
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, false); err != nil {
		t.Fatalf("cross-machine comparison must skip, not fail: %v", err)
	}
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, true); err == nil {
		t.Fatal("-force must apply the comparison and fail")
	}
}

// With no -baseline, the newest committed artifact gates: document date
// first, file name as the same-day tie-break, the fresh document excluded.
func TestLatestBaselineSelection(t *testing.T) {
	dir := t.TempDir()
	writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 500}))
	writeDoc(t, dir, "BENCH_2026-08-06-pr4.json", doc("2026-08-06", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	writeDoc(t, dir, "BENCH_2026-08-06-pr3.json", doc("2026-08-06", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 2000}))
	path, err := latestBaseline(dir, filepath.Join(dir, "fresh.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-08-06-pr4.json" {
		t.Fatalf("picked %s, want the lexically-last same-day artifact", filepath.Base(path))
	}

	// Against pr4's 1000 ns baseline, 1200 ns passes at 25%.
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1200}))
	if err := run(fresh, "", dir, "PipelineCorrelate", 25, false); err != nil {
		t.Fatal(err)
	}
	// The fresh doc itself must never be chosen as its own baseline even
	// though it matches BENCH_*.json naming.
	self := writeDoc(t, dir, "BENCH_2026-08-09-self.json", doc("2026-08-09", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 9999}))
	path, err = latestBaseline(dir, self)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) == "BENCH_2026-08-09-self.json" {
		t.Fatal("fresh document gated against itself")
	}
}

func TestNoBaselineIsNoop(t *testing.T) {
	dir := t.TempDir()
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	if err := run(fresh, "", dir, "PipelineCorrelate", 25, false); err != nil {
		t.Fatalf("no committed baseline must be a no-op: %v", err)
	}
}

func TestMissingBenchInFreshFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "BENCH_2026-08-01-pr1.json", doc("2026-08-01", cpu,
		map[string]float64{"BenchmarkPipelineCorrelate": 1000}))
	fresh := writeDoc(t, dir, "fresh.json", doc("2026-08-08", cpu,
		map[string]float64{"BenchmarkOther": 1}))
	if err := run(fresh, base, dir, "PipelineCorrelate", 25, false); err == nil {
		t.Fatal("gated benchmark missing from the fresh run must fail")
	}
}
