// Command benchdiff gates performance regressions against the committed
// bench2json artifacts. It compares the median ns/op of selected benchmarks
// in a fresh bench2json document against the latest committed
// BENCH_<date>-<tag>.json baseline and exits non-zero when a benchmark
// regressed beyond the threshold — the CI bench-smoke step runs it after
// every push.
//
// Benchmark names are matched tolerant of the GOMAXPROCS "-N" suffix, so a
// baseline recorded on an 8-way runner still gates a single-core run.
// Cross-machine numbers are noise, not signal: when the baseline's cpu
// string differs from the new document's, benchdiff warns and exits 0
// unless -force insists on the comparison.
//
// Usage:
//
//	go run ./tools/benchdiff -new fresh.json [-baseline BENCH_x.json]
//	    [-dir .] [-bench PipelineCorrelate] [-threshold 25] [-force]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Bench mirrors the bench2json document fields benchdiff reads.
type Bench struct {
	MedianNs float64 `json:"median_ns"`
}

// Report mirrors the bench2json document header benchdiff reads.
type Report struct {
	Date       string            `json:"date"`
	Tag        string            `json:"tag"`
	CPU        string            `json:"cpu"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

func main() {
	var (
		newPath   = flag.String("new", "", "fresh bench2json document (required)")
		baseline  = flag.String("baseline", "", "baseline document (default: latest committed BENCH_*.json in -dir)")
		dir       = flag.String("dir", ".", "directory searched for committed BENCH_*.json baselines")
		benchList = flag.String("bench", "PipelineCorrelate", "comma-separated benchmark base names to gate")
		threshold = flag.Float64("threshold", 25, "maximum allowed median ns/op regression, percent")
		force     = flag.Bool("force", false, "compare even when the baseline was recorded on a different CPU")
	)
	flag.Parse()
	if err := run(*newPath, *baseline, *dir, *benchList, *threshold, *force); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(newPath, baselinePath, dir, benchList string, threshold float64, force bool) error {
	if newPath == "" {
		return fmt.Errorf("-new is required")
	}
	fresh, err := load(newPath)
	if err != nil {
		return err
	}
	if baselinePath == "" {
		baselinePath, err = latestBaseline(dir, newPath)
		if err != nil {
			return err
		}
		if baselinePath == "" {
			fmt.Fprintf(os.Stderr, "benchdiff: no committed BENCH_*.json baseline in %s; nothing to gate\n", dir)
			return nil
		}
	}
	base, err := load(baselinePath)
	if err != nil {
		return err
	}
	if base.CPU != fresh.CPU && base.CPU != "" && fresh.CPU != "" && !force {
		fmt.Fprintf(os.Stderr,
			"benchdiff: baseline %s was recorded on %q, this run on %q — cross-machine medians are noise, skipping (use -force to compare anyway)\n",
			filepath.Base(baselinePath), base.CPU, fresh.CPU)
		return nil
	}

	var failures []string
	for _, name := range strings.Split(benchList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		oldNs, oldKey, ok := lookup(base.Benchmarks, name)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: %s absent from baseline %s, skipping\n", name, filepath.Base(baselinePath))
			continue
		}
		newNs, newKey, ok := lookup(fresh.Benchmarks, name)
		if !ok {
			return fmt.Errorf("%s absent from %s", name, newPath)
		}
		if oldNs <= 0 {
			return fmt.Errorf("baseline %s has non-positive median for %s", baselinePath, oldKey)
		}
		deltaPct := (newNs - oldNs) / oldNs * 100
		fmt.Printf("benchdiff: %-40s %14.0f ns -> %14.0f ns  (%+.1f%%, limit +%.0f%%) vs %s\n",
			newKey, oldNs, newNs, deltaPct, threshold, filepath.Base(baselinePath))
		if deltaPct > threshold {
			failures = append(failures, fmt.Sprintf("%s regressed %+.1f%% (limit +%.0f%%)", newKey, deltaPct, threshold))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

// lookup finds a benchmark by base name ("PipelineCorrelate"), tolerating
// the "Benchmark" prefix and the GOMAXPROCS "-N" suffix in the stored key.
func lookup(benches map[string]*Bench, name string) (float64, string, bool) {
	want := name
	if !strings.HasPrefix(want, "Benchmark") {
		want = "Benchmark" + want
	}
	keys := make([]string, 0, len(benches))
	for k := range benches {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == want || strippedProcs(k) == want {
			return benches[k].MedianNs, k, true
		}
	}
	return 0, "", false
}

// strippedProcs removes a trailing "-<digits>" GOMAXPROCS marker from a
// top-level benchmark name; sub-benchmarks (containing '/') are returned
// unchanged because their trailing number may be a parameter.
func strippedProcs(name string) string {
	if strings.ContainsRune(name, '/') {
		return name
	}
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// latestBaseline picks the newest committed BENCH_*.json in dir, ordered by
// the document's date field with the file name as tie-break (tags sort the
// same day's artifacts deterministically). The fresh document is excluded
// so a run in the repo root never gates against itself.
func latestBaseline(dir, exclude string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	excludeAbs, _ := filepath.Abs(exclude)
	type cand struct {
		path string
		date string
	}
	var cands []cand
	for _, p := range paths {
		if abs, _ := filepath.Abs(p); abs == excludeAbs {
			continue
		}
		rep, err := load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping unreadable baseline %s: %v\n", p, err)
			continue
		}
		cands = append(cands, cand{path: p, date: rep.Date})
	}
	if len(cands) == 0 {
		return "", nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].date != cands[j].date {
			return cands[i].date < cands[j].date
		}
		return cands[i].path < cands[j].path
	})
	return cands[len(cands)-1].path, nil
}
