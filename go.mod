module iotscope

go 1.22
